"""Tests for the CSR rating matrix."""

import numpy as np
import pytest

from repro.recommender.matrix import RatingMatrix


def simple_matrix():
    #        items: 0    1    2
    # user 0:      5.0   -   3.0
    # user 1:       -   4.0   -
    # user 2:      1.0  2.0  3.0
    return RatingMatrix(
        users=[0, 0, 1, 2, 2, 2],
        items=[0, 2, 1, 0, 1, 2],
        ratings=[5.0, 3.0, 4.0, 1.0, 2.0, 3.0],
    )


class TestConstruction:
    def test_shape_inferred(self):
        m = simple_matrix()
        assert m.n_users == 3 and m.n_items == 3 and m.nnz == 6

    def test_explicit_shape(self):
        m = RatingMatrix([0], [0], [1.0], n_users=10, n_items=20)
        assert m.n_users == 10 and m.n_items == 20

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix([0, 0], [1, 1], [3.0, 4.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix([-1], [0], [1.0])

    def test_index_exceeds_declared_shape(self):
        with pytest.raises(ValueError):
            RatingMatrix([5], [0], [1.0], n_users=3, n_items=3)

    def test_unsorted_input_ok(self):
        m = RatingMatrix([2, 0, 1], [0, 0, 0], [1.0, 2.0, 3.0])
        assert m.rating(0, 0) == 2.0
        assert m.rating(2, 0) == 1.0

    def test_empty_matrix(self):
        m = RatingMatrix([], [], [], n_users=4, n_items=4)
        assert m.nnz == 0
        ids, vals = m.user_ratings(2)
        assert ids.size == 0


class TestAccess:
    def test_user_ratings_sorted(self):
        m = simple_matrix()
        ids, vals = m.user_ratings(2)
        np.testing.assert_array_equal(ids, [0, 1, 2])
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0])

    def test_rating_lookup(self):
        m = simple_matrix()
        assert m.rating(0, 0) == 5.0
        assert m.rating(0, 1) is None

    def test_user_mean(self):
        m = simple_matrix()
        assert m.user_mean(0) == 4.0
        assert m.user_mean(2) == 2.0

    def test_mean_of_unrated_user(self):
        m = RatingMatrix([0], [0], [3.0], n_users=2, n_items=1)
        assert m.user_mean(1) == 0.0

    def test_out_of_range_user(self):
        with pytest.raises(IndexError):
            simple_matrix().user_ratings(99)

    def test_dense_roundtrip(self):
        m = simple_matrix()
        d = m.dense()
        assert d[0, 0] == 5.0 and d[1, 1] == 4.0 and d[1, 0] == 0.0

    def test_to_triples_roundtrip(self):
        m = simple_matrix()
        u, i, v = m.to_triples()
        m2 = RatingMatrix(u, i, v, n_users=m.n_users, n_items=m.n_items)
        np.testing.assert_array_equal(m.dense(), m2.dense())

    def test_item_raters(self):
        m = simple_matrix()
        raters = m.item_raters()
        np.testing.assert_array_equal(np.sort(raters[0]), [0, 2])
        np.testing.assert_array_equal(np.sort(raters[1]), [1, 2])
        assert 2 in raters


class TestMutation:
    def test_append_rows(self):
        m = simple_matrix()
        m2 = m.with_rows_appended([0, 0], [0, 1], [2.5, 3.5])
        assert m2.n_users == 4
        assert m2.rating(3, 0) == 2.5
        # Original untouched.
        assert m.n_users == 3

    def test_replace_users(self):
        m = simple_matrix()
        m2 = m.with_users_replaced({0: (np.array([1]), np.array([9.0]))})
        assert m2.rating(0, 1) == 9.0
        assert m2.rating(0, 0) is None
        assert m2.rating(2, 2) == 3.0  # others untouched
        assert m2.n_users == m.n_users
