"""Tests for user-based CF prediction and partial-sum merging."""

import numpy as np
import pytest

from repro.recommender.cf import CFComponent, CFPrediction, merge_predictions
from repro.recommender.matrix import RatingMatrix
from repro.util.rng import make_rng


def clustered_matrix(seed=0, n_users=40, n_items=20):
    """Two taste groups: first half loves even items, second half odd."""
    rng = make_rng(seed, "cf-test")
    users, items, vals = [], [], []
    for u in range(n_users):
        likes_even = u < n_users // 2
        for i in range(n_items):
            if rng.random() < 0.7:
                base = 4.5 if (i % 2 == 0) == likes_even else 1.5
                users.append(u)
                items.append(i)
                vals.append(np.clip(base + rng.normal(0, 0.3), 1, 5))
    return RatingMatrix(users, items, vals, n_users=n_users, n_items=n_items)


class TestCFPrediction:
    def test_fallback_to_mean(self):
        p = CFPrediction(active_mean=3.3)
        assert p.predict(5) == 3.3

    def test_predict_with_evidence(self):
        p = CFPrediction(active_mean=3.0)
        p.numer[1] = 2.0
        p.denom[1] = 1.0
        assert p.predict(1) == 5.0

    def test_absorb_merges_sums(self):
        a = CFPrediction(active_mean=3.0, numer={1: 1.0}, denom={1: 0.5})
        b = CFPrediction(active_mean=3.0, numer={1: 1.0, 2: -0.5},
                         denom={1: 0.5, 2: 0.5})
        a.absorb(b)
        assert a.predict(1) == pytest.approx(3.0 + 2.0 / 1.0)
        assert a.predict(2) == pytest.approx(3.0 - 1.0)

    def test_predict_many(self):
        p = CFPrediction(active_mean=2.0)
        out = p.predict_many([1, 2, 3])
        np.testing.assert_array_equal(out, [2.0, 2.0, 2.0])


class TestCFComponent:
    def test_prediction_follows_taste_cluster(self):
        m = clustered_matrix()
        comp = CFComponent(m)
        # Active user who loves even items.
        active_items = np.array([0, 1, 2, 3])
        active_vals = np.array([5.0, 1.0, 4.5, 1.5])
        mean = float(active_vals.mean())
        pred = comp.partial_prediction(active_items, active_vals, [4, 5],
                                       mean)
        assert pred.predict(4) > pred.predict(5)

    def test_subset_equals_sum_of_parts(self):
        m = clustered_matrix(seed=1)
        comp = CFComponent(m)
        active_items = np.array([0, 1, 2, 3, 4])
        active_vals = np.array([5.0, 1.0, 4.0, 2.0, 4.5])
        mean = float(active_vals.mean())
        whole = comp.partial_prediction(active_items, active_vals, [6], mean)
        first = comp.partial_prediction(active_items, active_vals, [6], mean,
                                        user_ids=np.arange(0, 20))
        second = comp.partial_prediction(active_items, active_vals, [6], mean,
                                         user_ids=np.arange(20, 40))
        merged = merge_predictions([first, second])
        assert merged.predict(6) == pytest.approx(whole.predict(6))

    def test_empty_user_subset(self):
        m = clustered_matrix(seed=2)
        comp = CFComponent(m)
        pred = comp.partial_prediction([0], [4.0], [1], 4.0,
                                       user_ids=np.empty(0, dtype=np.int64))
        assert pred.predict(1) == 4.0

    def test_user_means_cached(self):
        m = clustered_matrix(seed=3)
        comp = CFComponent(m)
        for u in (0, 5, 39):
            assert comp.user_means[u] == pytest.approx(m.user_mean(u))

    def test_raters_of(self):
        m = RatingMatrix([0, 1, 2], [7, 7, 3], [1.0, 2.0, 3.0])
        comp = CFComponent(m)
        np.testing.assert_array_equal(np.sort(comp.raters_of(7)), [0, 1])
        assert comp.raters_of(99).size == 0


class TestMergePredictions:
    def test_empty_needs_mean(self):
        with pytest.raises(ValueError):
            merge_predictions([])
        p = merge_predictions([], active_mean=2.5)
        assert p.predict(0) == 2.5

    def test_merge_commutative(self):
        a = CFPrediction(active_mean=3.0, numer={1: 1.0}, denom={1: 1.0})
        b = CFPrediction(active_mean=3.0, numer={1: 3.0}, denom={1: 2.0})
        ab = merge_predictions([CFPrediction(3.0, dict(a.numer), dict(a.denom)),
                                CFPrediction(3.0, dict(b.numer), dict(b.denom))])
        ba = merge_predictions([CFPrediction(3.0, dict(b.numer), dict(b.denom)),
                                CFPrediction(3.0, dict(a.numer), dict(a.denom))])
        assert ab.predict(1) == pytest.approx(ba.predict(1))
