"""Tests for Pearson similarity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.recommender.matrix import RatingMatrix
from repro.recommender.similarity import pearson, pearson_weights


def as_user(d: dict):
    ids = np.array(sorted(d), dtype=np.int64)
    vals = np.array([d[i] for i in sorted(d)], dtype=float)
    return ids, vals


class TestPearson:
    def test_perfect_positive(self):
        a = as_user({0: 1, 1: 2, 2: 3})
        b = as_user({0: 2, 1: 4, 2: 6})
        assert pearson(*a, *b) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = as_user({0: 1, 1: 2, 2: 3})
        b = as_user({0: 3, 1: 2, 2: 1})
        assert pearson(*a, *b) == pytest.approx(-1.0)

    def test_no_overlap_zero(self):
        a = as_user({0: 1, 1: 2})
        b = as_user({2: 3, 3: 4})
        assert pearson(*a, *b) == 0.0

    def test_single_overlap_zero(self):
        a = as_user({0: 1, 1: 5})
        b = as_user({1: 3, 2: 4})
        assert pearson(*a, *b) == 0.0  # overlap below MIN_OVERLAP

    def test_constant_side_zero(self):
        a = as_user({0: 2, 1: 2, 2: 2})
        b = as_user({0: 1, 1: 5, 2: 3})
        assert pearson(*a, *b) == 0.0

    def test_symmetry(self):
        a = as_user({0: 1.5, 1: 4.0, 2: 2.5, 5: 3.0})
        b = as_user({0: 2.0, 2: 4.5, 5: 1.0, 7: 3.3})
        assert pearson(*a, *b) == pytest.approx(pearson(*b, *a))

    def test_matches_numpy_on_overlap(self):
        a = as_user({0: 1.0, 1: 3.0, 2: 2.0, 3: 5.0})
        b = as_user({0: 2.0, 1: 2.5, 2: 1.0, 3: 4.0})
        expected = np.corrcoef([1, 3, 2, 5], [2, 2.5, 1, 4])[0, 1]
        assert pearson(*a, *b) == pytest.approx(expected)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = rng.integers(2, 10)
            items = np.sort(rng.choice(30, size=n, replace=False))
            a = (items, rng.random(n) * 5)
            b = (items, rng.random(n) * 5)
            w = pearson(*a, *b)
            assert -1.0 <= w <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20),
                          st.floats(min_value=1, max_value=5, allow_nan=False)),
                min_size=0, max_size=15, unique_by=lambda t: t[0]),
       st.lists(st.tuples(st.integers(0, 20),
                          st.floats(min_value=1, max_value=5, allow_nan=False)),
                min_size=0, max_size=15, unique_by=lambda t: t[0]))
def test_pearson_always_bounded_and_symmetric(da, db):
    a = as_user(dict(da))
    b = as_user(dict(db))
    w = pearson(*a, *b)
    assert -1.0 <= w <= 1.0
    assert w == pytest.approx(pearson(*b, *a))


class TestPearsonWeights:
    def test_against_matrix(self):
        m = RatingMatrix([0, 0, 1, 1], [0, 1, 0, 1], [1.0, 2.0, 2.0, 4.0])
        active = as_user({0: 1.0, 1: 2.0})
        w = pearson_weights(m, *active)
        assert w.shape == (2,)
        assert w[0] == pytest.approx(1.0)
        assert w[1] == pytest.approx(1.0)

    def test_subset_of_users(self):
        m = RatingMatrix([0, 0, 1, 1, 2, 2], [0, 1, 0, 1, 0, 1],
                         [1.0, 2.0, 2.0, 1.0, 1.0, 2.0])
        active = as_user({0: 1.0, 1: 2.0})
        w = pearson_weights(m, *active, user_ids=[2, 0])
        assert w.shape == (2,)
        assert w[0] == pytest.approx(1.0)   # user 2
        assert w[1] == pytest.approx(1.0)   # user 0

    def test_unsorted_active_items_handled(self):
        m = RatingMatrix([0, 0, 0], [0, 1, 2], [1.0, 2.0, 3.0])
        w = pearson_weights(m, [2, 0, 1], [3.0, 1.0, 2.0])
        assert w[0] == pytest.approx(1.0)
