"""Tests for Pearson similarity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.recommender.matrix import RatingMatrix
from repro.recommender.similarity import pearson, pearson_weights, \
    pearson_weights_batch, pearson_weights_scalar


def as_user(d: dict):
    ids = np.array(sorted(d), dtype=np.int64)
    vals = np.array([d[i] for i in sorted(d)], dtype=float)
    return ids, vals


class TestPearson:
    def test_perfect_positive(self):
        a = as_user({0: 1, 1: 2, 2: 3})
        b = as_user({0: 2, 1: 4, 2: 6})
        assert pearson(*a, *b) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = as_user({0: 1, 1: 2, 2: 3})
        b = as_user({0: 3, 1: 2, 2: 1})
        assert pearson(*a, *b) == pytest.approx(-1.0)

    def test_no_overlap_zero(self):
        a = as_user({0: 1, 1: 2})
        b = as_user({2: 3, 3: 4})
        assert pearson(*a, *b) == 0.0

    def test_single_overlap_zero(self):
        a = as_user({0: 1, 1: 5})
        b = as_user({1: 3, 2: 4})
        assert pearson(*a, *b) == 0.0  # overlap below MIN_OVERLAP

    def test_constant_side_zero(self):
        a = as_user({0: 2, 1: 2, 2: 2})
        b = as_user({0: 1, 1: 5, 2: 3})
        assert pearson(*a, *b) == 0.0

    def test_symmetry(self):
        a = as_user({0: 1.5, 1: 4.0, 2: 2.5, 5: 3.0})
        b = as_user({0: 2.0, 2: 4.5, 5: 1.0, 7: 3.3})
        assert pearson(*a, *b) == pytest.approx(pearson(*b, *a))

    def test_matches_numpy_on_overlap(self):
        a = as_user({0: 1.0, 1: 3.0, 2: 2.0, 3: 5.0})
        b = as_user({0: 2.0, 1: 2.5, 2: 1.0, 3: 4.0})
        expected = np.corrcoef([1, 3, 2, 5], [2, 2.5, 1, 4])[0, 1]
        assert pearson(*a, *b) == pytest.approx(expected)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = rng.integers(2, 10)
            items = np.sort(rng.choice(30, size=n, replace=False))
            a = (items, rng.random(n) * 5)
            b = (items, rng.random(n) * 5)
            w = pearson(*a, *b)
            assert -1.0 <= w <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20),
                          st.floats(min_value=1, max_value=5, allow_nan=False)),
                min_size=0, max_size=15, unique_by=lambda t: t[0]),
       st.lists(st.tuples(st.integers(0, 20),
                          st.floats(min_value=1, max_value=5, allow_nan=False)),
                min_size=0, max_size=15, unique_by=lambda t: t[0]))
def test_pearson_always_bounded_and_symmetric(da, db):
    a = as_user(dict(da))
    b = as_user(dict(db))
    w = pearson(*a, *b)
    assert -1.0 <= w <= 1.0
    assert w == pytest.approx(pearson(*b, *a))


class TestPearsonWeights:
    def test_against_matrix(self):
        m = RatingMatrix([0, 0, 1, 1], [0, 1, 0, 1], [1.0, 2.0, 2.0, 4.0])
        active = as_user({0: 1.0, 1: 2.0})
        w = pearson_weights(m, *active)
        assert w.shape == (2,)
        assert w[0] == pytest.approx(1.0)
        assert w[1] == pytest.approx(1.0)

    def test_subset_of_users(self):
        m = RatingMatrix([0, 0, 1, 1, 2, 2], [0, 1, 0, 1, 0, 1],
                         [1.0, 2.0, 2.0, 1.0, 1.0, 2.0])
        active = as_user({0: 1.0, 1: 2.0})
        w = pearson_weights(m, *active, user_ids=[2, 0])
        assert w.shape == (2,)
        assert w[0] == pytest.approx(1.0)   # user 2
        assert w[1] == pytest.approx(1.0)   # user 0

    def test_unsorted_active_items_handled(self):
        m = RatingMatrix([0, 0, 0], [0, 1, 2], [1.0, 2.0, 3.0])
        w = pearson_weights(m, [2, 0, 1], [3.0, 1.0, 2.0])
        assert w[0] == pytest.approx(1.0)


def random_matrix(rng, n_users=40, n_items=25, density=0.4) -> RatingMatrix:
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    vals = rng.integers(1, 6, size=users.size).astype(float)
    return RatingMatrix(users, items, vals,
                        n_users=n_users, n_items=n_items)


def random_active(rng, n_items=25):
    n = int(rng.integers(2, 9))
    items = np.sort(rng.choice(n_items, size=n, replace=False))
    return items, rng.integers(1, 6, size=n).astype(float)


class TestVectorizedOracle:
    """The CSR-vectorized hot path vs the per-user scalar loop, bit for bit.

    Both paths accumulate the Pearson sufficient sums with the same
    sequential ``bincount`` reduction, so equality is exact equality —
    ``np.array_equal``, not ``allclose``.
    """

    def test_matches_scalar_oracle_fuzz(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            m = random_matrix(rng)
            items, vals = random_active(rng)
            assert np.array_equal(pearson_weights(m, items, vals),
                                  pearson_weights_scalar(m, items, vals))

    def test_matches_scalar_on_user_subsets(self):
        rng = np.random.default_rng(8)
        m = random_matrix(rng)
        items, vals = random_active(rng)
        for _ in range(10):
            users = rng.choice(m.n_users, size=int(rng.integers(1, 15)),
                               replace=False)
            assert np.array_equal(
                pearson_weights(m, items, vals, user_ids=users),
                pearson_weights_scalar(m, items, vals, user_ids=users))

    def test_duplicate_active_items_fall_back_to_scalar(self):
        rng = np.random.default_rng(9)
        m = random_matrix(rng)
        items = np.array([0, 3, 3, 7], dtype=np.int64)
        vals = np.array([1.0, 2.0, 4.0, 3.0])
        assert np.array_equal(pearson_weights(m, items, vals),
                              pearson_weights_scalar(m, items, vals))

    def test_generator_user_ids(self):
        # Regression: a generator used to be exhausted by the first
        # internal pass, silently scoring zero users afterwards.
        rng = np.random.default_rng(10)
        m = random_matrix(rng)
        items, vals = random_active(rng)
        users = [3, 11, 0, 7]
        from_gen = pearson_weights(m, items, vals,
                                   user_ids=(u for u in users))
        from_list = pearson_weights(m, items, vals, user_ids=users)
        assert np.array_equal(from_gen, from_list)
        assert from_gen.shape == (len(users),)

    def test_empty_and_tiny_active_sets(self):
        rng = np.random.default_rng(11)
        m = random_matrix(rng)
        assert np.array_equal(pearson_weights(m, [], []),
                              np.zeros(m.n_users))
        # A single active item can never reach MIN_OVERLAP.
        assert np.array_equal(pearson_weights(m, [2], [3.0]),
                              np.zeros(m.n_users))


class TestPearsonWeightsBatch:
    def test_matches_single_request_rows(self):
        rng = np.random.default_rng(12)
        m = random_matrix(rng)
        actives = [random_active(rng) for _ in range(7)]
        batch = pearson_weights_batch(m, actives)
        assert batch.shape == (7, m.n_users)
        for k, (items, vals) in enumerate(actives):
            assert np.array_equal(batch[k], pearson_weights(m, items, vals))

    def test_mixed_clean_and_degenerate_requests(self):
        rng = np.random.default_rng(13)
        m = random_matrix(rng)
        actives = [
            random_active(rng),
            (np.array([4, 4], dtype=np.int64), np.array([1.0, 5.0])),  # dup
            (np.empty(0, dtype=np.int64), np.empty(0)),                # empty
            random_active(rng),
        ]
        batch = pearson_weights_batch(m, actives)
        for k, (items, vals) in enumerate(actives):
            assert np.array_equal(batch[k], pearson_weights(m, items, vals))

    def test_empty_batch(self):
        rng = np.random.default_rng(14)
        m = random_matrix(rng)
        assert pearson_weights_batch(m, []).shape == (0, m.n_users)
