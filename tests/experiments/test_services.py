"""Tests for the coupled accuracy substrates (both services)."""

import numpy as np
import pytest

from repro.experiments.cf_service import CFAccuracyService, CFServiceConfig
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)


@pytest.fixture(scope="module")
def cf_service():
    return CFAccuracyService(CFServiceConfig(
        n_partitions=4, users_per_partition=120, n_items=120,
        n_requests=12, reveal_items=40, n_targets=6, svd_iters=25, seed=7))


@pytest.fixture(scope="module")
def search_service():
    # Large enough that the synopsis has fine groups: the 40%-cap rule
    # only works when groups are meaningfully finer than topics.
    return SearchAccuracyService(SearchServiceConfig(
        n_partitions=4, docs_per_partition=350, n_topics=10,
        n_requests=15, synopsis_ratio=12.0, svd_iters=20, seed=7))


class TestCFService:
    def test_full_depth_equals_exact(self, cf_service):
        ones = np.ones((cf_service.config.n_requests, cf_service.n_partitions))
        assert cf_service.at_rmse(ones) == pytest.approx(
            cf_service.exact_rmse(), rel=1e-6)

    def test_all_partitions_used_equals_exact(self, cf_service):
        full = np.ones(cf_service.config.n_requests)
        assert cf_service.partial_rmse(full) == pytest.approx(
            cf_service.exact_rmse(), rel=1e-6)

    def test_zero_usage_degrades(self, cf_service):
        none = np.zeros(cf_service.config.n_requests)
        assert cf_service.partial_rmse(none) > cf_service.exact_rmse()

    def test_at_degrades_gracefully(self, cf_service):
        n, p = cf_service.config.n_requests, cf_service.n_partitions
        zero = cf_service.at_rmse(np.zeros((n, p)))
        half = cf_service.at_rmse(np.full((n, p), 0.5))
        exact = cf_service.exact_rmse()
        # Synopsis-only is worse than half-refined is (weakly) worse than
        # exact; allow small sampling noise on the middle comparison.
        assert zero >= half - 0.05
        assert half >= exact - 1e-9

    def test_at_floor_beats_partial_floor(self, cf_service):
        """The paper's core heavy-load claim: when components have no time
        left, a synopsis answer from *every* partition (AT at depth 0)
        loses far less accuracy than dropping those partitions entirely
        (partial execution at fraction 0)."""
        n, p = cf_service.config.n_requests, cf_service.n_partitions
        at = cf_service.at_rmse(np.zeros((n, p)))
        pe = cf_service.partial_rmse(np.zeros(n))
        assert cf_service.loss_percent(at) < cf_service.loss_percent(pe)

    def test_shape_validation(self, cf_service):
        with pytest.raises(ValueError):
            cf_service.at_rmse(np.ones((1, 1)))
        with pytest.raises(ValueError):
            cf_service.partial_rmse(np.ones(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CFServiceConfig(n_partitions=0)
        with pytest.raises(ValueError):
            CFServiceConfig(n_items=10, reveal_items=8, n_targets=5)


class TestSearchService:
    def test_full_depth_small_loss(self, search_service):
        # Full use of the 40%-capped budget: the paper reports ~1.2% loss
        # (the cap excludes groups holding a thin tail of the top-10).
        ones = np.ones((search_service.config.n_requests,
                        search_service.n_partitions))
        assert search_service.at_loss_percent(ones) < 10.0

    def test_all_partitions_zero_loss(self, search_service):
        full = np.ones(search_service.config.n_requests)
        assert search_service.partial_loss_percent(full) == pytest.approx(0.0)

    def test_zero_partitions_full_loss(self, search_service):
        none = np.zeros(search_service.config.n_requests)
        assert search_service.partial_loss_percent(none) == pytest.approx(100.0)

    def test_at_beats_partial_at_same_budget(self, search_service):
        n, p = search_service.config.n_requests, search_service.n_partitions
        at = search_service.at_loss_percent(np.full((n, p), 0.5))
        pe = search_service.partial_loss_percent(np.full(n, 0.5))
        assert at < pe

    def test_exact_cached(self, search_service):
        a = search_service.exact_topk(0)
        b = search_service.exact_topk(0)
        assert a is b

    def test_shape_validation(self, search_service):
        with pytest.raises(ValueError):
            search_service.at_loss_percent(np.ones((1, 1)))
        with pytest.raises(ValueError):
            search_service.partial_loss_percent(np.ones(2)[None, :])
