"""Smoke tests for the per-table/figure experiment runners (tiny scale)."""

import numpy as np
import pytest

from repro.experiments.cf_service import CFAccuracyService, CFServiceConfig
from repro.experiments.cf_tables import run_cf_tables
from repro.experiments.common import ExperimentScale, ServiceLatencyProfile
from repro.experiments.daily import run_daily
from repro.experiments.fig3 import run_fig3_cf, run_fig3_search
from repro.experiments.fig4 import run_fig4_cf, run_fig4_search
from repro.experiments.headline import compute_headline
from repro.experiments.hourly import run_hour
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)

TINY_SCALE = ExperimentScale(n_components=6, n_nodes=3, session_s=10.0)


@pytest.fixture(scope="module")
def tiny_cf_service():
    return CFAccuracyService(CFServiceConfig(
        n_partitions=3, users_per_partition=80, n_items=100,
        n_requests=8, reveal_items=30, n_targets=5, svd_iters=20, seed=1))


@pytest.fixture(scope="module")
def tiny_search_service():
    return SearchAccuracyService(SearchServiceConfig(
        n_partitions=3, docs_per_partition=120, n_topics=8,
        n_requests=10, svd_iters=15, seed=1))


class TestCFTables:
    @pytest.fixture(scope="class")
    def result(self, tiny_cf_service):
        return run_cf_tables(rates=(20, 100),
                             profile=ServiceLatencyProfile.cf(),
                             scale=TINY_SCALE, service=tiny_cf_service)

    def test_rows_complete(self, result):
        assert result.rates == [20, 100]
        for name in ("basic", "reissue", "at"):
            assert len(result.latency_ms[name]) == 2
        for name in ("partial", "at"):
            assert len(result.loss_percent[name]) == 2

    def test_paper_shape_at_heavy_load(self, result):
        # At 100 req/s: basic explodes, AT stays near the deadline.
        assert result.latency_ms["basic"][1] > 10 * result.latency_ms["at"][1]
        assert result.latency_ms["at"][1] < 250.0

    def test_at_loss_bounded(self, result):
        # At this 6-component smoke scale, partial execution skips few
        # partitions, so the AT-beats-partial ordering is only asserted at
        # bench scale (benchmarks/bench_table2_accuracy.py); here we check
        # AT's loss stays moderate even at the heaviest rate.
        assert 0.0 <= result.loss_percent["at"][1] < 30.0
        assert result.loss_percent["partial"][1] >= 0.0

    def test_text_rendering(self, result):
        assert "Table 1" in result.table1_text()
        assert "Table 2" in result.table2_text()

    def test_ratios_positive(self, result):
        # At this smoke-test scale only finiteness and direction are
        # asserted; the paper-magnitude ratios are checked by the
        # default-scale benchmarks.
        assert result.reissue_over_at_latency() > 1.0
        assert np.isfinite(result.partial_over_at_loss())


class TestHourly:
    def test_latency_only_run(self):
        res = run_hour(9, scale=TINY_SCALE, n_sessions=3, peak_rate=60.0)
        assert len(res.session_rates) == 3
        assert all(len(v) == 3 for v in res.tails_ms.values())
        assert np.isnan(res.losses["at"][0])  # no service coupled

    def test_hour9_rates_increase(self):
        res = run_hour(9, scale=TINY_SCALE, n_sessions=6, peak_rate=60.0)
        rates = res.session_rates
        assert rates[-1] > rates[0]

    def test_hour24_rates_decrease(self):
        res = run_hour(24, scale=TINY_SCALE, n_sessions=6, peak_rate=60.0)
        assert res.session_rates[-1] < res.session_rates[0]

    def test_with_accuracy(self, tiny_search_service):
        res = run_hour(10, scale=TINY_SCALE, n_sessions=2, peak_rate=80.0,
                       service=tiny_search_service)
        assert all(np.isfinite(res.losses["partial"]))
        assert "hour 10" in res.text()

    def test_bad_hour(self):
        with pytest.raises(ValueError):
            run_hour(0)


class TestDaily:
    @pytest.fixture(scope="class")
    def result(self, tiny_search_service):
        return run_daily(scale=TINY_SCALE, service=tiny_search_service,
                         peak_rate=80.0, hours=(5, 22))

    def test_rates_follow_profile(self, result):
        assert result.rates[1] > result.rates[0]  # hour 22 >> hour 5

    def test_at_wins_at_peak(self, result):
        i = result.hours.index(22)
        assert result.tails_ms["at"][i] < result.tails_ms["basic"][i]

    def test_text(self, result):
        assert "24-hour" in result.text()

    def test_headline_composition(self, result, tiny_cf_service):
        cf = run_cf_tables(rates=(100,), scale=TINY_SCALE,
                           service=tiny_cf_service)
        head = compute_headline(cf, result)
        assert head.cf_latency_reduction > 1.0
        assert "Headline" in head.text()

    def test_best_technique_partition(self, result):
        best = result.best_technique_hours()
        assert sorted(h for hs in best.values() for h in hs) == [5, 22]


class TestFig3:
    def test_cf_updating(self):
        # Moderate scale: creation must be dominated by the full-data SVD
        # for the paper's update-beats-creation property to be honest.
        res = run_fig3_cf(n_users=800, n_items=150, percents=(3,),
                          repeats=1, seed=1)
        assert len(res.add_s) == 1
        assert res.updates_faster_than_creation()
        assert "Figure 3" in res.text()

    def test_search_updating(self):
        res = run_fig3_search(n_docs=600, percents=(3,), repeats=1, seed=1)
        assert len(res.change_s) == 1
        assert res.updates_faster_than_creation()


class TestFig4:
    def test_cf_sections_decrease(self):
        res = run_fig4_cf(n_users=500, n_items=150, n_requests=20,
                          synopsis_ratio=15.0, seed=2)
        assert len(res.section_percent) == 10
        # First sections must dominate the last ones.
        assert res.section_percent[0] > 2 * np.mean(res.section_percent[5:])

    def test_search_top_section_dominates(self):
        res = run_fig4_search(n_docs=500, n_requests=30,
                              synopsis_ratio=10.0, seed=2)
        assert res.section_percent[0] > 50.0
        assert sum(res.section_percent) == pytest.approx(100.0, abs=1.0)
