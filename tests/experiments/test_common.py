"""Tests for the shared experiment machinery."""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentScale,
    ServiceLatencyProfile,
    build_cluster,
    paper_scale,
    run_techniques,
)
from repro.workloads.arrival import poisson_arrivals
from repro.util.rng import make_rng


class TestProfiles:
    def test_cf_profile_geometry(self):
        p = ServiceLatencyProfile.cf()
        assert p.full_work == 4000.0
        assert p.n_groups == round(4000 / 133.0)
        assert p.i_max is None
        assert p.group_works.sum() == pytest.approx(4000.0)
        assert p.base_speed == pytest.approx(4000 / 0.016)

    def test_search_profile_imax_rule(self):
        p = ServiceLatencyProfile.search()
        m = p.n_groups
        assert p.i_max == int(np.ceil(0.4 * m))

    def test_custom_sizes(self):
        p = ServiceLatencyProfile.cf(partition_points=1000, agg_ratio=50.0)
        assert p.n_groups == 20


class TestScale:
    def test_paper_scale(self):
        s = paper_scale()
        assert s.n_components == 108
        assert s.n_nodes == 27

    def test_paper_scale_overrides(self):
        s = paper_scale(session_s=30.0)
        assert s.n_components == 108 and s.session_s == 30.0

    def test_build_cluster(self):
        profile = ServiceLatencyProfile.cf()
        cluster, speed = build_cluster(profile, ExperimentScale(
            n_components=6, n_nodes=3, session_s=10.0))
        assert cluster.n_components == 6
        assert speed.multiplier(0, 0.0) > 0

    def test_no_interference(self):
        from repro.cluster.interference import ConstantSpeed

        profile = ServiceLatencyProfile.cf()
        _, speed = build_cluster(profile, ExperimentScale(
            n_components=2, n_nodes=2, interference=None))
        assert isinstance(speed, ConstantSpeed)


class TestRunTechniques:
    @pytest.fixture(scope="class")
    def runs(self):
        profile = ServiceLatencyProfile.cf(partition_points=1000)
        scale = ExperimentScale(n_components=8, n_nodes=4, session_s=15.0)
        arrivals = poisson_arrivals(30.0, 15.0, make_rng(0, "t"))
        return run_techniques(arrivals, profile, scale), arrivals

    def test_all_techniques_present(self, runs):
        out, _ = runs
        assert set(out) == {"basic", "reissue", "partial", "at"}

    def test_stats_dimensions(self, runs):
        out, arrivals = runs
        for run in out.values():
            assert run.stats.n_requests == arrivals.size
            assert run.stats.n_components == 8

    def test_at_bounded_by_deadline_plus_group(self, runs):
        out, _ = runs
        # AT's tail can exceed the deadline only by one group + synopsis.
        assert out["at"].tail_ms() < 200.0

    def test_partial_and_basic_same_latencies(self, runs):
        # Partial execution performs identical full scans; only the
        # composer differs, so the component latencies must match basic.
        out, _ = runs
        np.testing.assert_allclose(
            np.sort(out["partial"].stats.sub_latencies),
            np.sort(out["basic"].stats.sub_latencies))

    def test_unknown_technique(self):
        profile = ServiceLatencyProfile.cf()
        with pytest.raises(ValueError):
            run_techniques([0.0], profile, ExperimentScale(
                n_components=2, n_nodes=2), techniques=("nope",))
