"""Tests for the latency->accuracy coupling."""

import numpy as np
import pytest

from repro.experiments.coupling import at_depth_fractions, partial_used_fractions
from repro.strategies.accuracytrader import AccuracyTraderStrategy
from repro.strategies.partial import PartialExecutionStrategy
from repro.util.rng import make_rng


class TestATCoupling:
    def make_strategy(self, depths):
        s = AccuracyTraderStrategy(synopsis_work=1.0,
                                   group_works=np.ones(10),
                                   deadline=1.0)
        s.groups_processed = np.asarray(depths, dtype=np.int16)
        return s

    def test_fraction_range(self):
        s = self.make_strategy([[10, 0], [5, 5]])
        f = at_depth_fractions(s, 6, 3, make_rng(0))
        assert f.shape == (6, 3)
        assert np.all(f >= 0) and np.all(f <= 1)

    def test_full_depth_maps_to_one(self):
        s = self.make_strategy([[10, 10]])
        f = at_depth_fractions(s, 4, 2, make_rng(1))
        np.testing.assert_allclose(f, 1.0)

    def test_zero_depth_maps_to_zero(self):
        s = self.make_strategy([[0, 0]])
        f = at_depth_fractions(s, 4, 2, make_rng(2))
        np.testing.assert_allclose(f, 0.0)

    def test_empty_run_rejected(self):
        s = self.make_strategy(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            at_depth_fractions(s, 1, 1, make_rng(3))


class TestPartialCoupling:
    def test_samples_from_run(self):
        s = PartialExecutionStrategy(1.0, 1.0)
        s.begin_run(4, 10)
        s.completed_by_deadline = np.array([10, 5, 0, 10])
        f = partial_used_fractions(s, 100, make_rng(4))
        assert set(np.round(f, 2)) <= {0.0, 0.5, 1.0}

    def test_empty_run_rejected(self):
        s = PartialExecutionStrategy(1.0, 1.0)
        s.begin_run(0, 4)
        with pytest.raises(ValueError):
            partial_used_fractions(s, 1, make_rng(5))
