"""Tests for table formatting."""

from repro.experiments.formatting import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("name")

    def test_title(self):
        out = format_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_large_floats_grouped(self):
        out = format_table(["v"], [[123456.0]])
        assert "123,456" in out

    def test_small_floats_precision(self):
        out = format_table(["v"], [[0.123]])
        assert "0.12" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("s", [1, 2], [10.0, 20.0], "hour", "ms")
        assert "hour" in out and "ms" in out
        assert "s" == out.splitlines()[0]
