"""Tests for the basic / partial / AccuracyTrader work models."""

import numpy as np
import pytest

from repro.strategies.accuracytrader import AccuracyTraderStrategy
from repro.strategies.basic import BasicStrategy
from repro.strategies.partial import PartialExecutionStrategy


class TestBasic:
    def test_constant_work(self):
        s = BasicStrategy(123.0)
        s.begin_run(5, 3)
        assert s.service_work(0, 0, 0.0, 0.0, 10.0) == 123.0
        assert s.service_work(4, 2, 5.0, 99.0, 1.0) == 123.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BasicStrategy(0.0)


class TestPartial:
    def test_records_deadline_compliance(self):
        s = PartialExecutionStrategy(full_work=100.0, deadline=1.0)
        s.begin_run(2, 3)
        s.on_complete(0, 0, arrival=0.0, done=0.5)    # in time
        s.on_complete(0, 1, arrival=0.0, done=1.5)    # late
        s.on_complete(0, 2, arrival=0.0, done=1.0)    # exactly on time
        s.on_complete(1, 0, arrival=5.0, done=9.0)    # late
        np.testing.assert_array_equal(s.completed_by_deadline, [2, 0])
        np.testing.assert_allclose(s.used_fractions(), [2 / 3, 0.0])

    def test_work_is_full_scan(self):
        s = PartialExecutionStrategy(100.0, 0.1)
        s.begin_run(1, 1)
        assert s.service_work(0, 0, 0.0, 50.0, 1.0) == 100.0

    def test_used_fractions_requires_run(self):
        with pytest.raises(RuntimeError):
            PartialExecutionStrategy(1.0, 1.0).used_fractions()

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialExecutionStrategy(0.0, 1.0)
        with pytest.raises(ValueError):
            PartialExecutionStrategy(1.0, 0.0)


class TestAccuracyTrader:
    def make(self, m=10, group=100.0, syn=10.0, deadline=1.0, i_max=None):
        s = AccuracyTraderStrategy(synopsis_work=syn,
                                   group_works=np.full(m, group),
                                   deadline=deadline, i_max=i_max)
        s.begin_run(4, 2)
        return s

    def test_idle_component_processes_everything(self):
        s = self.make()
        # speed so high the deadline never binds.
        work = s.service_work(0, 0, arrival=0.0, start=0.0, speed=1e9)
        assert work == pytest.approx(10.0 + 10 * 100.0)
        assert s.groups_processed[0, 0] == 10

    def test_queue_delay_eats_budget(self):
        s = self.make()
        # Dequeued after the deadline: synopsis only.
        work = s.service_work(0, 0, arrival=0.0, start=2.0, speed=1e9)
        assert work == 10.0
        assert s.groups_processed[0, 0] == 0

    def test_partial_budget(self):
        s = self.make()
        # budget work = 1.0s * 510 - 10 = 500 -> groups with cum < 500:
        # cum = 0,100,...,900 -> k = 5.
        work = s.service_work(0, 0, 0.0, 0.0, 510.0)
        assert s.groups_processed[0, 0] == 5
        assert work == pytest.approx(10.0 + 500.0)

    def test_group_started_runs_to_completion(self):
        # The paper checks elapsed < deadline *before* each group, so a
        # group that starts just in time overshoots the deadline.
        s = self.make(m=1, group=1000.0, syn=0.0, deadline=0.5)
        work = s.service_work(0, 0, 0.0, 0.499, speed=10.0)
        assert work == 1000.0  # started before deadline, runs fully

    def test_i_max_caps(self):
        s = self.make(i_max=3)
        work = s.service_work(0, 0, 0.0, 0.0, 1e9)
        assert s.groups_processed[0, 0] == 3
        assert work == pytest.approx(10.0 + 300.0)

    def test_mean_refined_fraction(self):
        s = self.make()
        s.service_work(0, 0, 0.0, 0.0, 1e9)
        s.service_work(0, 1, 0.0, 10.0, 1e9)
        assert 0.0 < s.mean_refined_fraction() <= 1.0

    def test_refinement_depths_requires_run(self):
        s = AccuracyTraderStrategy(1.0, [1.0], 1.0)
        with pytest.raises(RuntimeError):
            s.refinement_depths()

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyTraderStrategy(-1.0, [1.0], 1.0)
        with pytest.raises(ValueError):
            AccuracyTraderStrategy(1.0, [[1.0]], 1.0)
        with pytest.raises(ValueError):
            AccuracyTraderStrategy(1.0, [-5.0], 1.0)
        with pytest.raises(ValueError):
            AccuracyTraderStrategy(1.0, [1.0], -1.0)

    def test_monotone_in_start_time(self):
        # Later dequeue -> never more groups processed.
        s = self.make()
        depths = []
        for start in np.linspace(0, 1.2, 8):
            s.service_work(0, 0, 0.0, float(start), 500.0)
            depths.append(int(s.groups_processed[0, 0]))
        assert all(depths[i] >= depths[i + 1] for i in range(len(depths) - 1))
