"""Tests for deadline clocks."""

import time

import pytest

from repro.core.clock import DeadlineClock, SimulatedClock, WallClock


class TestWallClock:
    def test_advances_with_real_time(self):
        c = WallClock()
        t0 = c.now()
        time.sleep(0.01)
        assert c.now() > t0

    def test_charge_is_noop(self):
        c = WallClock()
        t0 = c.now()
        c.charge(10_000)
        assert c.now() - t0 < 0.5

    def test_satisfies_protocol(self):
        assert isinstance(WallClock(), DeadlineClock)


class TestSimulatedClock:
    def test_charge_advances_by_work_over_speed(self):
        c = SimulatedClock(start=5.0, speed=100.0)
        c.charge(50)
        assert c.now() == pytest.approx(5.5)
        assert c.work_charged == 50

    def test_speed_change_applies_forward(self):
        c = SimulatedClock(speed=10.0)
        c.charge(10)        # +1.0s
        c.speed = 100.0
        c.charge(10)        # +0.1s
        assert c.now() == pytest.approx(1.1)

    def test_advance_idle(self):
        c = SimulatedClock()
        c.advance(2.5)
        assert c.now() == 2.5
        assert c.work_charged == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SimulatedClock(speed=0)
        c = SimulatedClock()
        with pytest.raises(ValueError):
            c.charge(-1)
        with pytest.raises(ValueError):
            c.advance(-1)

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), DeadlineClock)
