"""Tests for deadline clocks."""

import time

import pytest

from repro.core.clock import DeadlineClock, SimulatedClock, WallClock


class TestWallClock:
    def test_advances_with_real_time(self):
        c = WallClock()
        t0 = c.now()
        time.sleep(0.01)
        assert c.now() > t0

    def test_charge_is_noop(self):
        c = WallClock()
        t0 = c.now()
        c.charge(10_000)
        assert c.now() - t0 < 0.5

    def test_satisfies_protocol(self):
        assert isinstance(WallClock(), DeadlineClock)


class TestSimulatedClock:
    def test_charge_advances_by_work_over_speed(self):
        c = SimulatedClock(start=5.0, speed=100.0)
        c.charge(50)
        assert c.now() == pytest.approx(5.5)
        assert c.work_charged == 50

    def test_speed_change_applies_forward(self):
        c = SimulatedClock(speed=10.0)
        c.charge(10)        # +1.0s
        c.speed = 100.0
        c.charge(10)        # +0.1s
        assert c.now() == pytest.approx(1.1)

    def test_advance_idle(self):
        c = SimulatedClock()
        c.advance(2.5)
        assert c.now() == 2.5
        assert c.work_charged == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SimulatedClock(speed=0)
        c = SimulatedClock()
        with pytest.raises(ValueError):
            c.charge(-1)
        with pytest.raises(ValueError):
            c.advance(-1)

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), DeadlineClock)


class TestFreshLike:
    def test_simulated_clone_is_uncharged_same_world(self):
        from repro.core.clock import SimulatedClock, fresh_like

        clock = SimulatedClock(start=5.0, speed=200.0)
        clock.charge(100.0)  # advances 0.5 s of virtual time
        clone = fresh_like(clock)
        assert isinstance(clone, SimulatedClock)
        assert clone.now() == 5.0  # original start, charge not inherited
        assert clone.speed == 200.0
        assert clone.work_charged == 0.0

    def test_wall_clone(self):
        from repro.core.clock import WallClock, fresh_like

        assert isinstance(fresh_like(WallClock()), WallClock)

    def test_subclass_with_hook_is_not_downgraded(self):
        from repro.core.clock import SimulatedClock, fresh_like

        class JitterClock(SimulatedClock):
            def fresh(self):
                return JitterClock(start=self.start, speed=self.speed)

        clone = fresh_like(JitterClock(speed=3.0))
        assert type(clone) is JitterClock  # the hook wins over isinstance
        assert clone.speed == 3.0

    def test_subclass_without_hook_is_rejected(self):
        import pytest

        from repro.core.clock import SimulatedClock, fresh_like

        class SilentSubclass(SimulatedClock):
            pass

        # Downgrading to the base class would silently drop subclass
        # behavior; the clone must be explicit.
        with pytest.raises(TypeError):
            fresh_like(SilentSubclass(speed=3.0))

    def test_custom_clock_needs_fresh_hook(self):
        from repro.core.clock import SimulatedClock, fresh_like

        class HookClock:
            def now(self):
                return 0.0

            def charge(self, work):
                pass

            def fresh(self):
                return SimulatedClock(speed=7.0)

        assert fresh_like(HookClock()).speed == 7.0

        class BareClock:
            def now(self):
                return 0.0

            def charge(self, work):
                pass

        import pytest

        with pytest.raises(TypeError):
            fresh_like(BareClock())
