"""Tests for the synopsis / index-file data model."""

import numpy as np
import pytest

from repro.core.synopsis import IndexFile, Synopsis


class TestIndexFile:
    def test_members_sorted(self):
        f = IndexFile([[3, 1, 2], [5, 4]])
        np.testing.assert_array_equal(f.members(0), [1, 2, 3])

    def test_group_of(self):
        f = IndexFile([[0, 1], [2]])
        assert f.group_of(1) == 0
        assert f.group_of(2) == 1

    def test_group_of_missing(self):
        f = IndexFile([[0]])
        with pytest.raises(KeyError):
            f.group_of(9)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            IndexFile([[0, 1], [1, 2]])

    def test_counts(self):
        f = IndexFile([[0, 1], [2], [3, 4, 5]])
        assert f.n_groups == 3
        assert f.n_records == 6
        np.testing.assert_array_equal(f.group_sizes(), [2, 1, 3])

    def test_validate_against_expected(self):
        f = IndexFile([[0, 1], [2]])
        f.validate(expected_records=[0, 1, 2])
        with pytest.raises(ValueError):
            f.validate(expected_records=[0, 1, 2, 3])
        with pytest.raises(ValueError):
            f.validate(expected_records=[0, 1])

    def test_members_bad_group(self):
        f = IndexFile([[0]])
        with pytest.raises(IndexError):
            f.members(5)

    def test_json_roundtrip(self):
        f = IndexFile([[0, 2], [1]])
        g = IndexFile.from_json(f.to_json())
        assert f == g

    def test_groups_returns_copies(self):
        f = IndexFile([[0, 1]])
        f.groups()[0][0] = 99
        assert f.members(0)[0] == 0

    def test_empty(self):
        f = IndexFile([])
        assert f.n_groups == 0 and f.n_records == 0
        f.validate(expected_records=[])


class TestSynopsis:
    def test_aggregation_ratio(self):
        s = Synopsis(index=IndexFile([[0, 1], [2, 3]]), payload=None,
                     level=1, n_original=4)
        assert s.n_aggregated == 2
        assert s.aggregation_ratio == 2.0

    def test_empty_ratio(self):
        s = Synopsis(index=IndexFile([]), payload=None, level=0, n_original=0)
        assert s.aggregation_ratio == 0.0
