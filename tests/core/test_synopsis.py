"""Tests for the synopsis / index-file data model."""

import numpy as np
import pytest

from repro.core.synopsis import IndexFile, Synopsis
from repro.util.rng import make_rng


class TestIndexFile:
    def test_members_sorted(self):
        f = IndexFile([[3, 1, 2], [5, 4]])
        np.testing.assert_array_equal(f.members(0), [1, 2, 3])

    def test_group_of(self):
        f = IndexFile([[0, 1], [2]])
        assert f.group_of(1) == 0
        assert f.group_of(2) == 1

    def test_group_of_missing(self):
        f = IndexFile([[0]])
        with pytest.raises(KeyError):
            f.group_of(9)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            IndexFile([[0, 1], [1, 2]])

    def test_counts(self):
        f = IndexFile([[0, 1], [2], [3, 4, 5]])
        assert f.n_groups == 3
        assert f.n_records == 6
        np.testing.assert_array_equal(f.group_sizes(), [2, 1, 3])

    def test_validate_against_expected(self):
        f = IndexFile([[0, 1], [2]])
        f.validate(expected_records=[0, 1, 2])
        with pytest.raises(ValueError):
            f.validate(expected_records=[0, 1, 2, 3])
        with pytest.raises(ValueError):
            f.validate(expected_records=[0, 1])

    def test_members_bad_group(self):
        f = IndexFile([[0]])
        with pytest.raises(IndexError):
            f.members(5)

    def test_json_roundtrip(self):
        f = IndexFile([[0, 2], [1]])
        g = IndexFile.from_json(f.to_json())
        assert f == g

    def test_groups_returns_copies(self):
        f = IndexFile([[0, 1]])
        f.groups()[0][0] = 99
        assert f.members(0)[0] == 0

    def test_empty(self):
        f = IndexFile([])
        assert f.n_groups == 0 and f.n_records == 0
        f.validate(expected_records=[])


def assert_partitions(index: IndexFile, expected_records) -> None:
    """The invariant proper: groups partition the expected record set."""
    expected = sorted(int(r) for r in expected_records)
    members = [r for g in range(index.n_groups)
               for r in index.members(g).tolist()]
    # Every record in exactly one group: no duplicates, no misses.
    assert sorted(members) == expected
    assert len(members) == len(set(members))
    assert index.n_records == len(expected)
    for g in range(index.n_groups):
        for r in index.members(g).tolist():
            assert index.group_of(r) == g
    index.validate(expected_records=expected)


class TestPartitionInvariantProperty:
    """Property-style checks: random groupings + live updater mutations."""

    @pytest.mark.parametrize("trial", range(10))
    def test_random_partitions_uphold_invariant(self, trial):
        rng = make_rng(123, "indexfile", trial)
        n_records = int(rng.integers(1, 60))
        n_groups = int(rng.integers(1, n_records + 1))
        assignment = rng.integers(0, n_groups, size=n_records)
        groups = [np.flatnonzero(assignment == g) for g in range(n_groups)]
        index = IndexFile([g for g in groups if g.size])
        assert_partitions(index, range(n_records))
        # Round-tripping persistence must preserve the partition too.
        assert_partitions(IndexFile.from_json(index.to_json()),
                          range(n_records))

    @pytest.mark.parametrize("trial", range(6))
    def test_duplicated_record_always_rejected(self, trial):
        rng = make_rng(321, "indexfile-dup", trial)
        n_records = int(rng.integers(2, 40))
        n_groups = int(rng.integers(2, 5))
        assignment = rng.integers(0, n_groups, size=n_records)
        groups = [np.flatnonzero(assignment == g).tolist()
                  for g in range(n_groups)]
        # Duplicate one record into a second group.
        victim = int(rng.integers(0, n_records))
        home = int(assignment[victim])
        other = (home + 1) % n_groups
        groups[other].append(victim)
        with pytest.raises(ValueError):
            IndexFile([g for g in groups if g])

    def test_invariant_survives_updater_add_and_change(self, small_ratings,
                                                       cf_adapter):
        from repro.core.builder import SynopsisBuilder, SynopsisConfig
        from repro.core.updater import SynopsisUpdater

        matrix = small_ratings.matrix
        builder = SynopsisBuilder(cf_adapter, SynopsisConfig(
            n_iters=20, target_ratio=15.0, seed=21))
        synopsis, artifacts = builder.build(matrix)
        updater = SynopsisUpdater(cf_adapter, builder.config, matrix,
                                  synopsis, artifacts)
        assert_partitions(updater.synopsis.index, range(matrix.n_users))

        rng = make_rng(99, "updater-prop")
        part = matrix
        for round_ in range(3):
            # Situation 1: append a batch of new users.
            n_new = int(rng.integers(1, 4))
            n_ratings = int(rng.integers(1, 6))
            local = np.repeat(np.arange(n_new), n_ratings)
            items = rng.integers(0, part.n_items, size=local.size)
            vals = rng.uniform(1.0, 5.0, size=local.size)
            appended = part.with_rows_appended(local, items, vals)
            new_ids = list(range(part.n_users, part.n_users + n_new))
            updater.add_points(appended, new_ids)
            part = appended
            assert_partitions(updater.synopsis.index, range(part.n_users))

            # Situation 2: rewrite some existing users' ratings.
            n_changed = int(rng.integers(1, 5))
            changed = rng.choice(part.n_users, size=n_changed, replace=False)
            replaced = {}
            for u in changed.tolist():
                k = int(rng.integers(1, 6))
                ids = np.sort(rng.choice(part.n_items, size=k, replace=False))
                replaced[u] = (ids, rng.uniform(1.0, 5.0, size=k))
            mutated = part.with_users_replaced(replaced)
            updater.change_points(mutated, changed)
            part = mutated
            assert_partitions(updater.synopsis.index, range(part.n_users))


class TestSynopsis:
    def test_aggregation_ratio(self):
        s = Synopsis(index=IndexFile([[0, 1], [2, 3]]), payload=None,
                     level=1, n_original=4)
        assert s.n_aggregated == 2
        assert s.aggregation_ratio == 2.0

    def test_empty_ratio(self):
        s = Synopsis(index=IndexFile([]), payload=None, level=0, n_original=0)
        assert s.aggregation_ratio == 0.0
