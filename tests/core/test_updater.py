"""Tests for incremental synopsis updating."""

import copy

import numpy as np
import pytest

from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.updater import SynopsisUpdater
from repro.util.rng import make_rng
from repro.workloads.movielens import MovieLensConfig, generate_ratings


@pytest.fixture()
def cf_updater(small_ratings, cf_adapter, cf_synopsis):
    synopsis, artifacts = cf_synopsis
    return SynopsisUpdater(cf_adapter, SynopsisConfig(n_iters=40, target_ratio=15.0),
                           small_ratings.matrix,
                           copy.deepcopy(synopsis), copy.deepcopy(artifacts))


def new_user_block(data, k, seed=0):
    rng = make_rng(seed, "new-users")
    cfg = data.config
    users, items, vals = [], [], []
    for local in range(k):
        proto = int(rng.integers(0, data.user_factors.shape[0]))
        f = data.user_factors[proto]
        chosen = rng.choice(cfg.n_items, size=15, replace=False)
        raw = data.item_factors[chosen] @ f
        span = cfg.rating_max - cfg.rating_min
        v = np.clip(cfg.rating_min + span / (1 + np.exp(-raw)), 1, 5)
        users.append(np.full(15, local))
        items.append(chosen)
        vals.append(v)
    return (np.concatenate(users), np.concatenate(items), np.concatenate(vals))


class TestAddPoints:
    def test_adds_and_stays_consistent(self, small_ratings, cf_updater):
        n = small_ratings.matrix.n_users
        u, i, v = new_user_block(small_ratings, 10)
        m2 = small_ratings.matrix.with_rows_appended(u, i, v)
        report = cf_updater.add_points(m2, np.arange(n, n + 10))
        assert report.kind == "add"
        assert report.n_points == 10
        cf_updater.artifacts.tree.check_invariants()
        cf_updater.synopsis.index.validate(expected_records=range(n + 10))

    def test_only_affected_groups_reaggregated(self, small_ratings, cf_updater):
        n = small_ratings.matrix.n_users
        u, i, v = new_user_block(small_ratings, 3)
        m2 = small_ratings.matrix.with_rows_appended(u, i, v)
        report = cf_updater.add_points(m2, np.arange(n, n + 3))
        # 3 new points can touch at most ~3 groups (plus splits).
        assert report.n_groups_reaggregated <= 6
        assert report.n_groups_reaggregated >= 1

    def test_noncontiguous_ids_rejected(self, small_ratings, cf_updater):
        n = small_ratings.matrix.n_users
        u, i, v = new_user_block(small_ratings, 2)
        m2 = small_ratings.matrix.with_rows_appended(u, i, v)
        with pytest.raises(ValueError):
            cf_updater.add_points(m2, [n + 5, n + 6])

    def test_empty_add_is_noop(self, small_ratings, cf_updater):
        before = cf_updater.synopsis.n_aggregated
        report = cf_updater.add_points(small_ratings.matrix, [])
        assert report.n_points == 0
        assert cf_updater.synopsis.n_aggregated == before

    def test_new_points_queryable(self, small_ratings, cf_adapter, cf_updater):
        n = small_ratings.matrix.n_users
        u, i, v = new_user_block(small_ratings, 5)
        m2 = small_ratings.matrix.with_rows_appended(u, i, v)
        cf_updater.add_points(m2, np.arange(n, n + 5))
        # The new users must be reachable through the index file.
        for rid in range(n, n + 5):
            g = cf_updater.synopsis.index.group_of(rid)
            assert rid in cf_updater.synopsis.index.members(g)


class TestChangePoints:
    def test_change_reaggregates_their_groups(self, small_ratings, cf_updater):
        rng = make_rng(3, "change")
        changed = rng.choice(small_ratings.matrix.n_users, size=5, replace=False)
        replaced = {}
        for uid in changed:
            ids, _ = small_ratings.matrix.user_ratings(int(uid))
            replaced[int(uid)] = (ids, rng.uniform(1, 5, ids.size))
        m2 = small_ratings.matrix.with_users_replaced(replaced)
        report = cf_updater.change_points(m2, changed)
        assert report.kind == "change"
        assert report.n_points == 5
        assert report.n_groups_reaggregated >= 1
        cf_updater.artifacts.tree.check_invariants()
        cf_updater.synopsis.index.validate(
            expected_records=range(small_ratings.matrix.n_users))

    def test_changed_aggregates_reflect_new_data(self, small_ratings,
                                                 cf_adapter, cf_updater):
        # Change one user's ratings to all-5s and verify its group's
        # aggregated rating moved.
        uid = 0
        ids, _ = small_ratings.matrix.user_ratings(uid)
        m2 = small_ratings.matrix.with_users_replaced(
            {uid: (ids, np.full(ids.size, 5.0))})
        cf_updater.change_points(m2, [uid])
        g = cf_updater.synopsis.index.group_of(uid)
        from repro.recommender.aggregation import aggregate_group

        agg_ids, agg_means = aggregate_group(
            m2, cf_updater.synopsis.index.members(g))
        got_ids, got_means = cf_updater.synopsis.payload.matrix.user_ratings(g)
        np.testing.assert_array_equal(got_ids, agg_ids)
        np.testing.assert_allclose(got_means, agg_means)

    def test_unknown_id_rejected(self, small_ratings, cf_updater):
        with pytest.raises(ValueError):
            cf_updater.change_points(small_ratings.matrix, [10**6])

    def test_empty_change_is_noop(self, small_ratings, cf_updater):
        report = cf_updater.change_points(small_ratings.matrix, [])
        assert report.n_points == 0


class TestUpdateVsRebuild:
    def test_update_much_cheaper_than_rebuild(self, small_ratings, cf_adapter):
        """The paper's Figure-3 property: update time << creation time."""
        import time

        config = SynopsisConfig(n_iters=40, target_ratio=15.0, seed=3)
        builder = SynopsisBuilder(cf_adapter, config)
        t0 = time.perf_counter()
        synopsis, artifacts = builder.build(small_ratings.matrix)
        create_s = time.perf_counter() - t0

        upd = SynopsisUpdater(cf_adapter, config, small_ratings.matrix,
                              synopsis, artifacts)
        n = small_ratings.matrix.n_users
        u, i, v = new_user_block(small_ratings, max(1, n // 100))
        m2 = small_ratings.matrix.with_rows_appended(u, i, v)
        report = upd.add_points(m2, np.arange(n, n + max(1, n // 100)))
        assert report.seconds < create_s


class TestSearchUpdater:
    def test_add_pages(self, small_corpus, search_adapter, search_synopsis):
        import copy as _copy

        synopsis, artifacts = search_synopsis
        part = _copy.deepcopy(small_corpus.partition)
        upd = SynopsisUpdater(search_adapter,
                              SynopsisConfig(n_iters=30, target_ratio=20.0),
                              part, _copy.deepcopy(synopsis),
                              _copy.deepcopy(artifacts))
        n = part.n_docs
        new_ids = part.add_pages([["w0", "w1", "w0"], ["w5", "w6"]])
        report = upd.add_points(part, new_ids)
        assert report.n_points == 2
        upd.artifacts.tree.check_invariants()
        upd.synopsis.index.validate(expected_records=range(n + 2))

    def test_change_pages(self, small_corpus, search_adapter, search_synopsis):
        import copy as _copy

        synopsis, artifacts = search_synopsis
        part = _copy.deepcopy(small_corpus.partition)
        upd = SynopsisUpdater(search_adapter,
                              SynopsisConfig(n_iters=30, target_ratio=20.0),
                              part, _copy.deepcopy(synopsis),
                              _copy.deepcopy(artifacts))
        part.replace_page(0, ["changed", "content", "changed"])
        report = upd.change_points(part, [0])
        assert report.n_points == 1
        g = upd.synopsis.index.group_of(0)
        # The aggregated page must now contain the new terms.
        assert upd.synopsis.payload.index.term_frequency("changed", g) >= 2
