"""The epoch-versioned state plane: StateStore / StateRef semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.core.state import (
    ComponentState,
    StaleEpochError,
    StateRef,
    StateStore,
)


def make_state(tag: object) -> ComponentState:
    """A distinguishable snapshot; the store never inspects contents."""
    return ComponentState(partition=("partition", tag),
                          synopsis=("synopsis", tag))


class TestStateStore:
    def test_epochs_monotonic_across_components(self):
        store = StateStore()
        epochs = [store.publish(c, make_state((c, i)))
                  for i in range(3) for c in range(2)]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    def test_current_tracks_latest_publish(self):
        store = StateStore()
        store.publish(0, make_state("old"))
        e2 = store.publish(0, make_state("new"))
        epoch, state = store.current(0)
        assert epoch == e2
        assert state.partition == ("partition", "new")
        assert store.current_epoch(0) == e2
        assert store.current_state(0) is state

    def test_history_keeps_superseded_epochs(self):
        store = StateStore(retain=4)
        e1 = store.publish(0, make_state("a"))
        e2 = store.publish(0, make_state("b"))
        assert store.get(0, e1).partition == ("partition", "a")
        assert store.get(0, e2).partition == ("partition", "b")
        assert store.epochs(0) == [e1, e2]

    def test_retention_evicts_oldest(self):
        store = StateStore(retain=2)
        epochs = [store.publish(0, make_state(i)) for i in range(5)]
        # current + 2 retained.
        assert store.epochs(0) == epochs[-3:]
        with pytest.raises(StaleEpochError):
            store.get(0, epochs[0])

    def test_unknown_component_and_epoch(self):
        store = StateStore()
        with pytest.raises(KeyError):
            store.current(0)
        store.publish(0, make_state("x"))
        with pytest.raises(StaleEpochError):
            store.get(0, 999)

    def test_publish_rejects_non_state(self):
        with pytest.raises(TypeError):
            StateStore().publish(0, ("partition", "synopsis"))

    def test_store_ids_unique(self):
        assert StateStore().store_id != StateStore().store_id


class TestStateRef:
    def test_ref_resolves_current_snapshot(self):
        store = StateStore()
        epoch = store.publish(1, make_state("a"))
        ref = store.ref(1)
        assert ref.key == (store.store_id, 1, epoch)
        assert ref.resolve() is store.get(1, epoch)

    def test_ref_pins_dispatch_time_state_across_updates(self):
        store = StateStore()
        store.publish(0, make_state("old"))
        ref = store.ref(0)
        store.publish(0, make_state("new"))
        # The ref keeps resolving the state current when it was taken.
        assert ref.resolve().partition == ("partition", "old")

    def test_ref_survives_history_eviction_via_pin(self):
        store = StateStore(retain=0)
        store.publish(0, make_state("old"))
        ref = store.ref(0)
        store.publish(0, make_state("new"))
        with pytest.raises(StaleEpochError):
            store.get(0, ref.epoch)   # evicted from the bounded history
        assert ref.resolve().partition == ("partition", "old")  # pinned

    def test_detached_ref_is_tiny_and_cannot_self_resolve(self):
        store = StateStore()
        store.publish(0, make_state("big" * 1000))
        ref = store.ref(0)
        detached = ref.detached()
        assert detached.key == ref.key
        assert detached.store is None and detached.pinned is None
        assert len(pickle.dumps(detached)) < 200
        with pytest.raises(StaleEpochError):
            detached.resolve()

    def test_ref_equality_is_identity_triple(self):
        store = StateStore()
        store.publish(0, make_state("x"))
        ref = store.ref(0)
        assert ref == ref.detached()  # store/pinned excluded from compare
        other = StateRef(store_id="elsewhere", component=0, epoch=ref.epoch)
        assert ref != other
