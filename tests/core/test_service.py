"""Tests for the AccuracyTraderService facade."""

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.recommender.matrix import RatingMatrix


@pytest.fixture(scope="module")
def cf_service_facade(small_ratings, cf_adapter):
    users, items, vals = small_ratings.matrix.to_triples()
    parts = []
    for p in range(2):
        mask = (users % 2) == p
        parts.append(RatingMatrix(users[mask] // 2, items[mask], vals[mask],
                                  n_users=small_ratings.matrix.n_users // 2,
                                  n_items=small_ratings.matrix.n_items))
    return AccuracyTraderService(
        cf_adapter, parts,
        config=SynopsisConfig(n_iters=30, target_ratio=15.0, seed=4))


class TestProcess:
    def test_generous_deadline_matches_exact(self, cf_service_facade,
                                             cf_request):
        svc = cf_service_facade
        answer, reports = svc.process(cf_request, deadline=10.0)
        exact = svc.exact(cf_request)
        assert len(reports) == svc.n_components
        for item in cf_request.target_items:
            assert answer.predict(item) == pytest.approx(exact.predict(item))

    def test_per_component_clocks(self, cf_service_facade, cf_request):
        svc = cf_service_facade
        # One fast, one starved component.
        clocks = [SimulatedClock(speed=1e12), SimulatedClock(speed=1.0)]
        _, reports = svc.process(cf_request, deadline=0.01, clocks=clocks)
        assert reports[0].groups_processed > reports[1].groups_processed

    def test_clock_count_validated(self, cf_service_facade, cf_request):
        with pytest.raises(ValueError):
            cf_service_facade.process(cf_request, deadline=1.0,
                                      clocks=[SimulatedClock()])

    def test_empty_partitions_rejected(self, cf_adapter):
        with pytest.raises(ValueError):
            AccuracyTraderService(cf_adapter, [])


class TestUpdates:
    def test_add_points_flows_to_processing(self, small_ratings, cf_adapter,
                                            cf_request):
        users, items, vals = small_ratings.matrix.to_triples()
        part = RatingMatrix(users, items, vals,
                            n_users=small_ratings.matrix.n_users,
                            n_items=small_ratings.matrix.n_items)
        svc = AccuracyTraderService(
            cf_adapter, [part],
            config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=5))
        n = part.n_users
        new = part.with_rows_appended(
            np.zeros(3, dtype=np.int64), np.array([0, 1, 2]),
            np.array([5.0, 4.0, 3.0]))
        report = svc.add_points(0, new, [n])
        assert report.n_points == 1
        answer, _ = svc.process(cf_request, deadline=10.0)
        exact = svc.exact(cf_request)
        for item in cf_request.target_items:
            assert answer.predict(item) == pytest.approx(exact.predict(item))
