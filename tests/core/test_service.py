"""Tests for the AccuracyTraderService facade."""

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.recommender.matrix import RatingMatrix
from tests.helpers import process


@pytest.fixture(scope="module")
def cf_service_facade(small_ratings, cf_adapter):
    users, items, vals = small_ratings.matrix.to_triples()
    parts = []
    for p in range(2):
        mask = (users % 2) == p
        parts.append(RatingMatrix(users[mask] // 2, items[mask], vals[mask],
                                  n_users=small_ratings.matrix.n_users // 2,
                                  n_items=small_ratings.matrix.n_items))
    return AccuracyTraderService(
        cf_adapter, parts,
        config=SynopsisConfig(n_iters=30, target_ratio=15.0, seed=4))


class TestProcess:
    def test_generous_deadline_matches_exact(self, cf_service_facade,
                                             cf_request):
        svc = cf_service_facade
        answer, reports = process(svc, cf_request, deadline=10.0)
        exact = svc.exact(cf_request)
        assert len(reports) == svc.n_components
        for item in cf_request.target_items:
            assert answer.predict(item) == pytest.approx(exact.predict(item))

    def test_per_component_clocks(self, cf_service_facade, cf_request):
        svc = cf_service_facade
        # One fast, one starved component.
        clocks = [SimulatedClock(speed=1e12), SimulatedClock(speed=1.0)]
        _, reports = process(svc, cf_request, deadline=0.01, clocks=clocks)
        assert reports[0].groups_processed > reports[1].groups_processed

    def test_clock_count_validated(self, cf_service_facade, cf_request):
        with pytest.raises(ValueError):
            process(cf_service_facade, cf_request, deadline=1.0,
                                      clocks=[SimulatedClock()])

    def test_empty_partitions_rejected(self, cf_adapter):
        with pytest.raises(ValueError):
            AccuracyTraderService(cf_adapter, [])

    def test_degenerate_split_rejected(self, cf_adapter):
        # Regression: splitting 3 users into 5 parts silently produces
        # two empty components; the service must refuse them loudly
        # instead of building meaningless synopses.
        from repro.workloads.partitioning import split_ratings

        tiny = RatingMatrix(np.array([0, 1, 2]), np.array([0, 1, 0]),
                            np.array([4.0, 3.0, 5.0]), n_users=3, n_items=2)
        parts = split_ratings(tiny, 5)
        assert sum(p.n_users == 0 for p in parts) == 2
        with pytest.raises(ValueError, match="no records"):
            AccuracyTraderService(cf_adapter, parts)

    def test_degenerate_corpus_split_rejected(self, search_adapter):
        from repro.search.partition import SearchPartition
        from repro.workloads.partitioning import split_corpus

        tiny = SearchPartition()
        tiny.add_page(["alpha", "beta"])
        tiny.add_page(["beta", "gamma"])
        parts = split_corpus(tiny, 3)
        with pytest.raises(ValueError, match="no records"):
            AccuracyTraderService(search_adapter, parts)


class TestBackendLifecycle:
    def test_service_closes_backend_resolved_from_spec(self, small_ratings,
                                                       cf_adapter,
                                                       cf_request):
        from repro.core.builder import SynopsisConfig
        from repro.workloads.partitioning import split_ratings

        with AccuracyTraderService(
                cf_adapter, split_ratings(small_ratings.matrix, 2),
                config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7),
                backend="thread") as svc:
            process(svc, cf_request, deadline=10.0)
            assert svc.backend._pool is not None
        # Context exit shut the owned pool down; no threads leak.
        assert svc.backend._pool is None

    def test_service_leaves_shared_backend_alone(self, small_ratings,
                                                 cf_adapter, cf_request):
        from repro.core.builder import SynopsisConfig
        from repro.serving.backends import ThreadPoolBackend
        from repro.workloads.partitioning import split_ratings

        with ThreadPoolBackend(max_workers=2) as backend:
            with AccuracyTraderService(
                    cf_adapter, split_ratings(small_ratings.matrix, 2),
                    config=SynopsisConfig(n_iters=20, target_ratio=15.0,
                                          seed=7),
                    backend=backend) as svc:
                process(svc, cf_request, deadline=10.0)
            # The caller's pool survives the service's close.
            assert backend._pool is not None


class TestUpdates:
    def test_add_points_flows_to_processing(self, small_ratings, cf_adapter,
                                            cf_request):
        users, items, vals = small_ratings.matrix.to_triples()
        part = RatingMatrix(users, items, vals,
                            n_users=small_ratings.matrix.n_users,
                            n_items=small_ratings.matrix.n_items)
        svc = AccuracyTraderService(
            cf_adapter, [part],
            config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=5))
        n = part.n_users
        new = part.with_rows_appended(
            np.zeros(3, dtype=np.int64), np.array([0, 1, 2]),
            np.array([5.0, 4.0, 3.0]))
        report = svc.add_points(0, new, [n])
        assert report.n_points == 1
        answer, _ = process(svc, cf_request, deadline=10.0)
        exact = svc.exact(cf_request)
        for item in cf_request.target_items:
            assert answer.predict(item) == pytest.approx(exact.predict(item))
