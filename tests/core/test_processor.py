"""Tests for Algorithm 1 (online accuracy-aware processing)."""

import numpy as np
import pytest

from repro.core.clock import SimulatedClock
from repro.core.processor import AccuracyAwareProcessor, refine_to_depth


class TestProcessorCF:
    def make(self, small_ratings, cf_adapter, cf_synopsis, **kw):
        synopsis, _ = cf_synopsis
        return AccuracyAwareProcessor(cf_adapter, small_ratings.matrix,
                                      synopsis, **kw)

    def test_generous_deadline_processes_all(self, small_ratings, cf_adapter,
                                             cf_synopsis, cf_request):
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        clock = SimulatedClock(speed=1e9)
        result, report = proc.process(cf_request, deadline=10.0, clock=clock)
        assert report.exhausted
        assert report.groups_processed == proc.synopsis.n_aggregated

    def test_result_matches_exact_when_all_processed(self, small_ratings,
                                                     cf_adapter, cf_synopsis,
                                                     cf_request):
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        result, _ = proc.process(cf_request, deadline=10.0,
                                 clock=SimulatedClock(speed=1e9))
        exact = cf_adapter.exact(small_ratings.matrix, cf_request)
        for item in cf_request.target_items:
            assert result.predict(item) == pytest.approx(exact.predict(item))

    def test_zero_deadline_still_produces_result(self, small_ratings,
                                                 cf_adapter, cf_synopsis,
                                                 cf_request):
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        result, report = proc.process(cf_request, deadline=0.0,
                                      clock=SimulatedClock(speed=1e9))
        assert report.groups_processed == 0
        assert report.hit_deadline
        # Synopsis pass still produced a usable prediction.
        assert np.isfinite(result.predict(cf_request.target_items[0]))

    def test_tight_deadline_stops_early(self, small_ratings, cf_adapter,
                                        cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        # Speed such that ~2 groups fit after the synopsis pass.
        group_w = synopsis.index.group_sizes().mean()
        speed = (synopsis.n_aggregated + 2 * group_w) / 0.1
        _, report = proc.process(cf_request, deadline=0.1,
                                 clock=SimulatedClock(speed=speed))
        assert 0 < report.groups_processed < synopsis.n_aggregated
        assert report.hit_deadline

    def test_i_max_cap(self, small_ratings, cf_adapter, cf_synopsis, cf_request):
        proc = self.make(small_ratings, cf_adapter, cf_synopsis, i_max=2)
        _, report = proc.process(cf_request, deadline=10.0,
                                 clock=SimulatedClock(speed=1e9))
        assert report.groups_processed == 2
        assert report.hit_imax

    def test_i_max_fraction(self, small_ratings, cf_adapter, cf_synopsis,
                            cf_request):
        synopsis, _ = cf_synopsis
        proc = self.make(small_ratings, cf_adapter, cf_synopsis,
                         i_max_fraction=0.5)
        expected = int(np.ceil(0.5 * synopsis.n_aggregated))
        assert proc.i_max == expected

    def test_mutually_exclusive_caps(self, small_ratings, cf_adapter,
                                     cf_synopsis):
        with pytest.raises(ValueError):
            self.make(small_ratings, cf_adapter, cf_synopsis,
                      i_max=1, i_max_fraction=0.5)

    def test_invalid_params(self, small_ratings, cf_adapter, cf_synopsis,
                            cf_request):
        with pytest.raises(ValueError):
            self.make(small_ratings, cf_adapter, cf_synopsis, i_max=-1)
        with pytest.raises(ValueError):
            self.make(small_ratings, cf_adapter, cf_synopsis,
                      i_max_fraction=1.5)
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        with pytest.raises(ValueError):
            proc.process(cf_request, deadline=-1.0)

    def test_queueing_delay_counts_against_deadline(self, small_ratings,
                                                    cf_adapter, cf_synopsis,
                                                    cf_request):
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        clock = SimulatedClock(start=5.0, speed=1e9)  # dequeued at t=5
        # Submitted at t=0, deadline 1s: already expired while queueing.
        _, report = proc.process(cf_request, deadline=1.0, clock=clock,
                                 start_time=0.0)
        assert report.groups_processed == 0
        assert report.hit_deadline

    def test_ranking_is_correlation_descending(self, small_ratings, cf_adapter,
                                               cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        proc = self.make(small_ratings, cf_adapter, cf_synopsis)
        _, report = proc.process(cf_request, deadline=10.0,
                                 clock=SimulatedClock(speed=1e9))
        _, corr = cf_adapter.initial_result(synopsis, cf_request)
        ranked = report.groups_ranked
        vals = [corr[g] for g in ranked]
        assert all(vals[i] >= vals[i + 1] - 1e-12 for i in range(len(vals) - 1))

    def test_accuracy_improves_with_depth(self, small_ratings, cf_adapter,
                                          cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        exact = cf_adapter.exact(small_ratings.matrix, cf_request)
        errors = []
        for depth in (0, synopsis.n_aggregated // 2, synopsis.n_aggregated):
            approx = refine_to_depth(cf_adapter, small_ratings.matrix,
                                     synopsis, cf_request, depth)
            err = np.mean([
                abs(approx.predict(i) - exact.predict(i))
                for i in cf_request.target_items
            ])
            errors.append(err)
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)
        assert errors[0] >= errors[-1]


class TestProcessorSearch:
    def test_full_refinement_matches_exact(self, small_corpus, search_adapter,
                                           search_synopsis, search_query):
        synopsis, _ = search_synopsis
        proc = AccuracyAwareProcessor(search_adapter, small_corpus.partition,
                                      synopsis)
        result, report = proc.process(search_query, deadline=10.0,
                                      clock=SimulatedClock(speed=1e9))
        exact = search_adapter.exact(small_corpus.partition, search_query)
        assert [h.doc_id for h in result] == [h.doc_id for h in exact]

    def test_i_max_fraction_rule(self, small_corpus, search_adapter,
                                 search_synopsis, search_query):
        synopsis, _ = search_synopsis
        proc = AccuracyAwareProcessor(search_adapter, small_corpus.partition,
                                      synopsis, i_max_fraction=0.4)
        _, report = proc.process(search_query, deadline=10.0,
                                 clock=SimulatedClock(speed=1e9))
        assert report.groups_processed <= int(np.ceil(0.4 * synopsis.n_aggregated))

    def test_overlap_improves_with_depth(self, small_corpus, search_adapter,
                                         search_synopsis, search_query):
        from repro.search.metrics import topk_overlap

        synopsis, _ = search_synopsis
        exact_ids = [h.doc_id for h in
                     search_adapter.exact(small_corpus.partition, search_query)]
        overlaps = []
        for depth in (0, synopsis.n_aggregated):
            hits = refine_to_depth(search_adapter, small_corpus.partition,
                                   synopsis, search_query, depth)
            overlaps.append(topk_overlap([h.doc_id for h in hits], exact_ids))
        assert overlaps[-1] == 1.0
        assert overlaps[0] <= overlaps[-1]


class TestRefineToDepth:
    def test_negative_depth(self, small_ratings, cf_adapter, cf_synopsis,
                            cf_request):
        synopsis, _ = cf_synopsis
        with pytest.raises(ValueError):
            refine_to_depth(cf_adapter, small_ratings.matrix, synopsis,
                            cf_request, -1)

    def test_depth_beyond_groups_clamped(self, small_ratings, cf_adapter,
                                         cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        full = refine_to_depth(cf_adapter, small_ratings.matrix, synopsis,
                               cf_request, synopsis.n_aggregated + 100)
        exact = cf_adapter.exact(small_ratings.matrix, cf_request)
        for item in cf_request.target_items:
            assert full.predict(item) == pytest.approx(exact.predict(item))
