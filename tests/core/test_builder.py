"""Tests for synopsis creation (both services)."""

import numpy as np
import pytest

from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.recommender.matrix import RatingMatrix


class TestConfig:
    def test_ratio_validated(self):
        with pytest.raises(ValueError):
            SynopsisConfig(target_ratio=0.5)


class TestCFBuild:
    def test_index_partitions_users(self, small_ratings, cf_synopsis):
        synopsis, _ = cf_synopsis
        synopsis.index.validate(
            expected_records=range(small_ratings.matrix.n_users))
        assert synopsis.n_original == small_ratings.matrix.n_users

    def test_ratio_near_target(self, cf_synopsis):
        synopsis, _ = cf_synopsis
        # The "closest" level rule lands within a node-capacity factor of
        # the target group count (levels jump by ~max_entries).
        target = synopsis.n_original / 15.0
        assert target / 8.0 <= synopsis.n_aggregated <= target * 8.0

    def test_at_most_rule_enforces_bound(self, small_ratings, cf_adapter):
        synopsis, _ = SynopsisBuilder(cf_adapter, SynopsisConfig(
            n_iters=10, target_ratio=15.0, level_rule="at_most",
            seed=3)).build(small_ratings.matrix)
        assert synopsis.n_aggregated <= small_ratings.matrix.n_users / 15.0

    def test_bad_level_rule(self):
        with pytest.raises(ValueError):
            SynopsisConfig(level_rule="nope")

    def test_payload_is_cf_component(self, cf_synopsis):
        from repro.recommender.cf import CFComponent

        synopsis, _ = cf_synopsis
        assert isinstance(synopsis.payload, CFComponent)
        assert synopsis.payload.n_users == synopsis.n_aggregated

    def test_meta_records_step_times(self, cf_synopsis):
        synopsis, _ = cf_synopsis
        for key in ("step1_s", "step2_s", "step3_s", "total_s"):
            assert synopsis.meta[key] >= 0.0

    def test_artifacts_consistent(self, small_ratings, cf_synopsis):
        synopsis, artifacts = cf_synopsis
        artifacts.tree.check_invariants()
        assert len(artifacts.tree) == small_ratings.matrix.n_users
        assert artifacts.svd.n_rows == small_ratings.matrix.n_users
        assert len(artifacts.group_vectors) == synopsis.n_aggregated
        assert artifacts.level == synopsis.level

    def test_aggregated_ratings_are_group_means(self, small_ratings, cf_synopsis):
        from repro.recommender.aggregation import aggregate_group

        synopsis, _ = cf_synopsis
        g = 0
        ids, means = aggregate_group(small_ratings.matrix,
                                     synopsis.index.members(g))
        got_ids, got_means = synopsis.payload.matrix.user_ratings(g)
        np.testing.assert_array_equal(got_ids, ids)
        np.testing.assert_allclose(got_means, means)

    def test_empty_partition(self, cf_adapter):
        empty = RatingMatrix([], [], [], n_users=0, n_items=5)
        synopsis, artifacts = SynopsisBuilder(cf_adapter).build(empty)
        assert synopsis.n_aggregated == 0
        assert synopsis.n_original == 0

    def test_similar_users_grouped(self, small_ratings, cf_synopsis):
        # Groups should be purer in taste clusters than random grouping.
        synopsis, _ = cf_synopsis
        clusters = small_ratings.user_cluster
        purities = []
        for g in range(synopsis.n_aggregated):
            members = synopsis.index.members(g)
            counts = np.bincount(clusters[members])
            purities.append(counts.max() / members.size)
        n_clusters = small_ratings.config.n_clusters
        assert np.mean(purities) > 1.5 / n_clusters


class TestSearchBuild:
    def test_index_partitions_docs(self, small_corpus, search_synopsis):
        synopsis, _ = search_synopsis
        synopsis.index.validate(
            expected_records=range(small_corpus.partition.n_docs))

    def test_payload_is_search_component(self, search_synopsis):
        from repro.search.engine import SearchComponent

        synopsis, _ = search_synopsis
        assert isinstance(synopsis.payload, SearchComponent)
        assert synopsis.payload.n_docs == synopsis.n_aggregated

    def test_aggregated_page_is_bag_union(self, small_corpus, search_synopsis):
        synopsis, _ = search_synopsis
        g = 0
        members = synopsis.index.members(g)
        total_len = sum(len(small_corpus.partition.tokens_of(int(d)))
                        for d in members)
        assert synopsis.payload.index.doc_length(g) == total_len

    def test_topic_purity_above_random(self, small_corpus, search_synopsis):
        synopsis, _ = search_synopsis
        topics = small_corpus.doc_topic
        purities = []
        for g in range(synopsis.n_aggregated):
            members = synopsis.index.members(g)
            counts = np.bincount(topics[members])
            purities.append(counts.max() / members.size)
        assert np.mean(purities) > 1.5 / small_corpus.config.n_topics
