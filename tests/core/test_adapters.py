"""Tests for the service adapters."""

import numpy as np
import pytest

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, SearchQuery


class TestCFRequest:
    def test_sorts_items(self):
        r = CFRequest(active_items=[3, 1], active_vals=[3.0, 1.0],
                      target_items=[7])
        np.testing.assert_array_equal(r.active_items, [1, 3])
        np.testing.assert_array_equal(r.active_vals, [1.0, 3.0])

    def test_mean(self):
        r = CFRequest(active_items=[0, 1], active_vals=[2.0, 4.0],
                      target_items=[])
        assert r.active_mean == 3.0

    def test_empty_active(self):
        r = CFRequest(active_items=[], active_vals=[], target_items=[1])
        assert r.active_mean == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            CFRequest(active_items=[1], active_vals=[1.0, 2.0],
                      target_items=[])


class TestSearchQuery:
    def test_terms_stringified(self):
        q = SearchQuery(terms=["a", "b"], k=5)
        assert q.terms == ["a", "b"]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            SearchQuery(terms=["a"], k=0)


class TestCFAdapterOffline:
    def test_svd_triples_mean_centred(self, small_ratings, cf_adapter):
        rows, cols, vals, nr, nc = cf_adapter.svd_triples(small_ratings.matrix)
        assert nr == small_ratings.matrix.n_users
        # Per-user mean of centred values must be ~0.
        sums = np.bincount(rows, weights=vals, minlength=nr)
        counts = np.maximum(np.bincount(rows, minlength=nr), 1)
        np.testing.assert_allclose(sums / counts, 0.0, atol=1e-9)

    def test_svd_triples_subset_local_rows(self, small_ratings, cf_adapter):
        rows, cols, vals, nr, nc = cf_adapter.svd_triples(
            small_ratings.matrix, record_ids=[5, 9])
        assert nr == 2
        assert set(rows.tolist()) <= {0, 1}

    def test_postprocess_normalises(self, cf_adapter):
        f = np.array([[3.0, 4.0], [0.0, 0.0]])
        out = cf_adapter.postprocess_reduced(f)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)
        np.testing.assert_array_equal(out[1], [0.0, 0.0])

    def test_work_accounting(self, small_ratings, cf_adapter, cf_synopsis):
        synopsis, _ = cf_synopsis
        assert cf_adapter.synopsis_work(synopsis) == synopsis.n_aggregated
        assert cf_adapter.full_work(small_ratings.matrix) == \
            small_ratings.matrix.n_users
        total = sum(cf_adapter.group_work(synopsis, g)
                    for g in range(synopsis.n_aggregated))
        assert total == synopsis.n_original


class TestCFAdapterOnline:
    def test_initial_result_correlations_bounded(self, cf_adapter, cf_synopsis,
                                                 cf_request):
        synopsis, _ = cf_synopsis
        state, corr = cf_adapter.initial_result(synopsis, cf_request)
        assert corr.shape == (synopsis.n_aggregated,)
        assert np.all(corr >= 0) and np.all(corr <= 1)
        assert set(state) == set(range(synopsis.n_aggregated))

    def test_refine_replaces_group_contribution(self, small_ratings, cf_adapter,
                                                cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        state, _ = cf_adapter.initial_result(synopsis, cf_request)
        before = state[0]
        state = cf_adapter.refine(small_ratings.matrix, synopsis, 0,
                                  cf_request, state)
        assert state[0] is not before

    def test_finalize_merges_all_groups(self, small_ratings, cf_adapter,
                                        cf_synopsis, cf_request):
        synopsis, _ = cf_synopsis
        state, _ = cf_adapter.initial_result(synopsis, cf_request)
        for g in range(synopsis.n_aggregated):
            state = cf_adapter.refine(small_ratings.matrix, synopsis, g,
                                      cf_request, state)
        final = cf_adapter.finalize(state, cf_request)
        exact = cf_adapter.exact(small_ratings.matrix, cf_request)
        for item in cf_request.target_items:
            assert final.predict(item) == pytest.approx(exact.predict(item))


class TestSearchAdapterOnline:
    def test_correlations_are_scores(self, search_adapter, search_synopsis,
                                     search_query):
        synopsis, _ = search_synopsis
        state, corr = search_adapter.initial_result(synopsis, search_query)
        assert corr.shape == (synopsis.n_aggregated,)
        assert np.all(corr >= 0)
        assert corr.max() > 0  # the query matches something

    def test_initial_state_assigns_group_scores_to_members(
            self, search_adapter, search_synopsis, search_query):
        synopsis, _ = search_synopsis
        state, corr = search_adapter.initial_result(synopsis, search_query)
        g = int(np.argmax(corr))
        members, score = state["estimated"][g]
        assert set(members.tolist()) == \
            set(synopsis.index.members(g).tolist())
        assert score == pytest.approx(corr[g])
        assert state["refined"] == {}

    def test_refine_moves_group_to_exact(self, small_corpus, search_adapter,
                                         search_synopsis, search_query):
        synopsis, _ = search_synopsis
        state, corr = search_adapter.initial_result(synopsis, search_query)
        g = int(np.argmax(corr))
        state = search_adapter.refine(small_corpus.partition, synopsis, g,
                                      search_query, state)
        assert g in state["refined"]
        assert g not in state["estimated"]

    def test_full_refinement_equals_exact(self, small_corpus, search_adapter,
                                          search_synopsis, search_query):
        synopsis, _ = search_synopsis
        state, _ = search_adapter.initial_result(synopsis, search_query)
        for g in range(synopsis.n_aggregated):
            state = search_adapter.refine(small_corpus.partition, synopsis, g,
                                          search_query, state)
        final = search_adapter.finalize(state, search_query)
        exact = search_adapter.exact(small_corpus.partition, search_query)
        assert [h.doc_id for h in final] == [h.doc_id for h in exact]

    def test_work_accounting(self, small_corpus, search_adapter,
                             search_synopsis):
        synopsis, _ = search_synopsis
        assert search_adapter.full_work(small_corpus.partition) == \
            small_corpus.partition.n_docs
        total = sum(search_adapter.group_work(synopsis, g)
                    for g in range(synopsis.n_aggregated))
        assert total == synopsis.n_original


class TestComponentMemoEviction:
    def test_cf_memo_growth_is_bounded(self):
        import numpy as np

        from repro.core.adapters import CFAdapter
        from repro.recommender.matrix import RatingMatrix

        adapter = CFAdapter()
        matrices = []
        for _ in range(50):
            matrix = RatingMatrix(np.array([0, 1]), np.array([0, 1]),
                                  np.array([3.0, 4.0]),
                                  n_users=2, n_items=2)
            matrices.append(matrix)  # keep alive: ids must stay distinct
            adapter._component(matrix)
        # Copy-on-swap updates retire partitions wholesale; the memo is a
        # bounded LRU so superseded partitions cannot accumulate forever.
        assert len(adapter._components) <= 32
        # The live partition still hits the memo (identity-checked).
        comp = adapter._component(matrices[-1])
        assert adapter._component(matrices[-1]) is comp
