"""Tests for load-adaptive multi-resolution synopses."""

import pytest

from repro.core.builder import SynopsisConfig
from repro.core.multires import MultiResolutionSynopsis, build_multires


@pytest.fixture(scope="module")
def multires(small_ratings, cf_adapter):
    return build_multires(cf_adapter, small_ratings.matrix,
                          SynopsisConfig(n_iters=30, target_ratio=8.0, seed=2),
                          n_resolutions=3)


class TestBuild:
    def test_resolutions_ordered_coarse_to_fine(self, multires):
        mr, _ = multires
        sizes = [mr.levels[lv].n_aggregated for lv in mr.resolutions]
        assert sizes == sorted(sizes)
        assert mr.coarsest.n_aggregated <= mr.finest.n_aggregated

    def test_each_level_partitions_records(self, small_ratings, multires):
        mr, _ = multires
        n = small_ratings.matrix.n_users
        for synopsis in mr.levels.values():
            synopsis.index.validate(expected_records=range(n))

    def test_all_levels_answer_requests(self, small_ratings, cf_adapter,
                                        multires, cf_request):
        mr, _ = multires
        for synopsis in mr.levels.values():
            state, corr = cf_adapter.initial_result(synopsis, cf_request)
            assert corr.shape == (synopsis.n_aggregated,)

    def test_validation(self, small_ratings, cf_adapter):
        with pytest.raises(ValueError):
            build_multires(cf_adapter, small_ratings.matrix, n_resolutions=0)
        with pytest.raises(ValueError):
            MultiResolutionSynopsis(levels={})


class TestSelect:
    def test_big_budget_selects_finest(self, multires):
        mr, _ = multires
        assert mr.select(budget_s=10.0, speed=1e9) is mr.finest

    def test_tiny_budget_selects_coarsest(self, multires):
        mr, _ = multires
        assert mr.select(budget_s=1e-9, speed=1.0) is mr.coarsest

    def test_negative_budget_still_answers(self, multires):
        mr, _ = multires
        # Past the deadline: the component still produces an initial
        # result from the smallest synopsis (Algorithm 1 semantics).
        assert mr.select(budget_s=-1.0, speed=100.0) is mr.coarsest

    def test_monotone_in_budget(self, multires):
        mr, _ = multires
        speed = 1000.0
        sizes = [mr.select(b, speed).n_aggregated
                 for b in (0.0, 0.01, 0.1, 1.0, 100.0)]
        assert sizes == sorted(sizes)

    def test_invalid_args(self, multires):
        mr, _ = multires
        with pytest.raises(ValueError):
            mr.select(1.0, speed=0.0)
        with pytest.raises(ValueError):
            mr.select(1.0, speed=1.0, stage1_share=0.0)
