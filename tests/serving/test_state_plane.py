"""Epoch semantics through the serving stack.

The contracts pinned here:

- tasks reference state by ``(component, epoch)`` and every backend
  resolves the *dispatch-time* epoch — an in-flight request never
  observes a concurrent ``change_points`` (no torn reads);
- the persistent process backend ships each snapshot at most once per
  epoch (amortised state distribution), its workers cache by epoch and
  evict superseded epochs, and the parent channel drops epochs that are
  both superseded and drained;
- the per-task serialized payload cost is measured: the vanilla process
  pool embeds state per task, the persistent backend does not;
- CF answers are bit-identical across sequential / thread / process /
  persistent / async backends over the same snapshots and clocks.
"""

from __future__ import annotations

import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.serving.backends import (
    PersistentProcessBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.workloads.partitioning import split_ratings
from tests.helpers import process

CONFIG = SynopsisConfig(n_iters=20, target_ratio=12.0, seed=5)
DEADLINE = 10.0
SPEED = 1e12


def clocks(n):
    return [SimulatedClock(speed=SPEED) for _ in range(n)]


def assert_cf_equal(a, b):
    assert a.numer == b.numer and a.denom == b.denom


@pytest.fixture()
def cf_service(cf_adapter, small_ratings):
    svc = AccuracyTraderService(cf_adapter,
                                split_ratings(small_ratings.matrix, 2),
                                config=CONFIG)
    yield svc
    svc.close()


class TestEpochPinning:
    def test_tasks_reference_state_by_epoch(self, cf_service, cf_request):
        tasks = cf_service.build_tasks(cf_request, DEADLINE, clocks(2))
        for c, task in enumerate(tasks):
            assert task.partition is None and task.synopsis is None
            assert task.state_ref.component == c
            assert task.state_ref.epoch == cf_service.component_epoch(c)
            assert task.state_ref.store_id == cf_service.store.store_id

    def test_inflight_tasks_pinned_across_change_points(self, cf_service,
                                                        cf_request):
        before, reps = process(cf_service, cf_request, DEADLINE,
                                          clocks=clocks(2))
        # Dispatch (build tasks), then update, then execute: the tasks
        # must compute against their dispatch-time epoch.
        tasks = cf_service.build_tasks(cf_request, DEADLINE, clocks(2))
        old_epochs = [t.state_ref.epoch for t in tasks]
        part0 = cf_service.partitions[0]
        cf_service.change_points(0, part0, [0, 1])
        assert cf_service.component_epoch(0) > old_epochs[0]
        outcomes = SequentialBackend().run_tasks(tasks)
        drained = cf_service.merge([o.result for o in outcomes], cf_request)
        assert_cf_equal(drained, before)
        assert [o.report.state_epoch for o in outcomes] == old_epochs
        # A fresh dispatch sees the new epoch.
        _, new_reps = process(cf_service, cf_request, DEADLINE,
                                         clocks=clocks(2))
        assert new_reps[0].state_epoch > old_epochs[0]
        assert new_reps[1].state_epoch == old_epochs[1]

    def test_reports_carry_state_epochs(self, cf_service, cf_request):
        _, reps = process(cf_service, cf_request, DEADLINE, clocks=clocks(2))
        assert [r.state_epoch for r in reps] == \
            [cf_service.component_epoch(c) for c in range(2)]


class TestBackendParityAcrossEpochs:
    def test_all_five_backends_bit_identical(self, cf_service, cf_request):
        # An update first, so resolution happens against epoch > 1.
        cf_service.change_points(0, cf_service.partitions[0], [0])
        base, _ = process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                                     backend=SequentialBackend())
        for name in ("thread", "process", "persistent", "async"):
            with resolve_backend(name) as backend:
                ans, reps = process(cf_service, cf_request, DEADLINE,
                                               clocks=clocks(2),
                                               backend=backend)
                assert_cf_equal(ans, base)
                assert [r.state_epoch for r in reps] == \
                    [cf_service.component_epoch(c) for c in range(2)]


class TestPersistentBackend:
    def test_state_ships_once_per_epoch_not_per_task(self, cf_service,
                                                     cf_request):
        with PersistentProcessBackend(max_workers=1) as backend:
            for _ in range(4):
                process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                                   backend=backend)
            counters = backend.payload_counters()
            assert counters["tasks_shipped"] == 8
            assert counters["state_publishes"] == 2  # one per component
            state_bytes_before = counters["state_bytes"]
            # An update publishes exactly one more snapshot...
            cf_service.change_points(0, cf_service.partitions[0], [0])
            for _ in range(3):
                process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                                   backend=backend)
            counters = backend.payload_counters()
            assert counters["state_publishes"] == 3
            assert counters["state_bytes"] > state_bytes_before

    def test_task_payload_excludes_state(self, cf_service, cf_request):
        with ProcessPoolBackend(max_workers=1) as vanilla, \
                PersistentProcessBackend(max_workers=1) as persistent:
            base, _ = process(cf_service, cf_request, DEADLINE,
                                         clocks=clocks(2), backend=vanilla)
            ans, _ = process(cf_service, cf_request, DEADLINE,
                                        clocks=clocks(2), backend=persistent)
            assert_cf_equal(ans, base)
            per_task_vanilla = (vanilla.payload_counters()["task_bytes"]
                                / vanilla.payload_counters()["tasks_shipped"])
            p = persistent.payload_counters()
            per_task_persistent = p["task_bytes"] / p["tasks_shipped"]
            # The vanilla pool embeds the (partition, synopsis) snapshot
            # in every task; the persistent one ships a detached ref.
            assert per_task_persistent < per_task_vanilla / 3

    def test_worker_cache_evicts_superseded_epochs(self, cf_service,
                                                   cf_request):
        with PersistentProcessBackend(max_workers=1) as backend:
            process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                               backend=backend)
            e_old = cf_service.component_epoch(0)
            cf_service.change_points(0, cf_service.partitions[0], [0])
            e_new = cf_service.component_epoch(0)
            process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                               backend=backend)
            cached = backend.probe_worker_cache()
            epochs_comp0 = [k[2] for k in cached if k[1] == 0]
            assert epochs_comp0 == [e_new]
            assert e_old not in epochs_comp0

    def test_channel_drops_superseded_drained_epochs(self, cf_service,
                                                     cf_request):
        with PersistentProcessBackend(max_workers=1) as backend:
            process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                               backend=backend)
            store_id = cf_service.store.store_id
            e_old = cf_service.component_epoch(0)
            assert backend.published_epochs(store_id, 0) == [e_old]
            cf_service.change_points(0, cf_service.partitions[0], [0])
            process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                               backend=backend)
            # The old epoch is superseded and drained: evicted.
            assert backend.published_epochs(store_id, 0) == \
                [cf_service.component_epoch(0)]

    def test_straggler_republish_evicted_after_drain(self, cf_service,
                                                     cf_request):
        # A task pinned to an already-evicted epoch re-publishes it; the
        # re-published (still superseded) epoch must be evicted again
        # once the straggler drains, and must not displace the newest
        # epoch from the worker cache.
        with PersistentProcessBackend(max_workers=1) as backend:
            store_id = cf_service.store.store_id
            straggler = cf_service.build_tasks(cf_request, DEADLINE,
                                               clocks(2))
            e_old = straggler[0].state_ref.epoch
            cf_service.change_points(0, cf_service.partitions[0], [0])
            e_new = cf_service.component_epoch(0)
            process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                               backend=backend)
            assert backend.published_epochs(store_id, 0) == [e_new]
            outcomes = backend.run_tasks(straggler)
            assert outcomes[0].report.state_epoch == e_old  # pinned
            # Channel: the straggler's epoch drained and is gone again.
            assert backend.published_epochs(store_id, 0) == [e_new]
            # Worker cache: still exactly the newest epoch.
            assert [k[2] for k in backend.probe_worker_cache()
                    if k[1] == 0] == [e_new]

    def test_materialised_task_runs_without_channel(self, cf_service,
                                                    cf_request):
        # A task that crossed a process boundary once carries its state
        # inline plus a detached ref that was never published to this
        # backend's channel: inline state must win (regression — the
        # worker used to resolve via the channel and crash).
        import pickle

        task = cf_service.build_tasks(cf_request, DEADLINE, clocks(2))[0]
        materialised = pickle.loads(pickle.dumps(task))
        assert materialised.partition is not None
        assert materialised.state_ref is not None  # detached epoch identity
        base = SequentialBackend().run_tasks([task])[0]
        with PersistentProcessBackend(max_workers=1) as backend:
            outcome = backend.run_tasks([materialised])[0]
        assert_cf_equal(outcome.result, base.result)
        assert outcome.report.state_epoch == base.report.state_epoch

    def test_detached_ref_rejected_unless_published(self, cf_service,
                                                    cf_request):
        from dataclasses import replace

        from repro.core.state import StaleEpochError

        with PersistentProcessBackend(max_workers=1) as backend:
            task = cf_service.build_tasks(cf_request, DEADLINE, clocks(2))[0]
            bare = replace(task, state_ref=task.state_ref.detached())
            # Never published to this backend: descriptive parent-side
            # error, not a FileNotFoundError from inside a worker.
            with pytest.raises(StaleEpochError, match="channel"):
                backend.submit_task(bare)
            # Once the epoch is in the channel, the same detached task
            # resolves from the worker cache.
            base = backend.run_tasks([task])[0]
            outcome = backend.run_tasks([bare])[0]
            assert_cf_equal(outcome.result, base.result)

    def test_resolve_backend_knows_persistent(self):
        backend = resolve_backend("persistent")
        assert isinstance(backend, PersistentProcessBackend)
        assert backend.name == "persistent"
        backend.close()

    def test_close_idempotent_and_restartable(self, cf_service, cf_request):
        backend = PersistentProcessBackend(max_workers=1)
        ans1, _ = process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                                     backend=backend)
        backend.close()
        backend.close()
        # A fresh pool + channel spins up lazily after close.
        ans2, _ = process(cf_service, cf_request, DEADLINE, clocks=clocks(2),
                                     backend=backend)
        assert_cf_equal(ans1, ans2)
        backend.close()


class TestPayloadStats:
    def test_harness_reports_bytes_per_request(self, cf_service,
                                               small_ratings):
        from repro.serving.harness import ServingHarness
        from repro.serving.loadgen import LoadGenerator

        from tests.serving.test_harness import cf_request_factory

        loadgen = LoadGenerator(cf_request_factory(small_ratings.matrix),
                                seed=9)
        load = loadgen.closed_loop(n_clients=2, n_requests=6)
        with PersistentProcessBackend(max_workers=2) as backend:
            harness = ServingHarness(cf_service, deadline=DEADLINE,
                                     backend=backend)
            stats = harness.run_closed_loop(load)
        assert stats.tasks_shipped == 12          # 6 requests x 2 components
        assert stats.state_publishes == 2         # one snapshot per component
        assert stats.task_bytes > 0 and stats.state_bytes > 0
        assert stats.bytes_per_request() == pytest.approx(
            (stats.task_bytes + stats.state_bytes) / 6)

    def test_inprocess_backends_ship_zero_bytes(self, cf_service, cf_request):
        from repro.serving.harness import ServingHarness
        from repro.serving.loadgen import LoadGenerator

        loadgen = LoadGenerator(lambda i, rng: cf_request, seed=9)
        with ThreadPoolBackend(max_workers=2) as backend:
            harness = ServingHarness(cf_service, deadline=DEADLINE,
                                     backend=backend)
            stats = harness.run_closed_loop(
                loadgen.closed_loop(n_clients=1, n_requests=3))
        assert stats.task_bytes == 0 and stats.state_bytes == 0
        assert stats.bytes_per_request() == 0.0
