"""The socket transport: framing, delta epochs, remote cluster serving.

Four layers of pinning:

- the wire framing itself (header layout, strictness, byte-exact
  round-trips of :class:`ServingRequest` / :class:`ServingResponse` /
  :class:`ProcessingReport` — sharing ``report_key`` with the envelope
  suite so "survives the wire" means the same thing as "survives a
  process boundary" there);
- the content-defined delta layer (identity, small-edit deltas much
  smaller than the full blob, checksum-verified application);
- :class:`RemoteChannel` — multiplexed RPC: out-of-order reply
  correlation, interleaved concurrent calls, cancellation of one
  in-flight RPC leaving siblings intact, EOF failing all pending,
  and the per-link in-flight cap;
- :class:`RemoteBackend` — bit-identical outcomes vs the in-process
  reference, semantic/CDC delta publications on epoch transitions,
  batch framing, straggler epochs, and the live-ref requirement;
- :class:`RemoteServable` — a multi-process localhost cluster serving
  CF and search bit-identically to the in-process
  :class:`ShardedService`, updates propagating over the wire, and
  multi-link (``n_links``) spawns.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.processor import ProcessingReport
from repro.core.service import AccuracyTraderService
from repro.core.state import (
    PICKLE_PROTOCOL,
    DeltaMismatchError,
    StaleEpochError,
    apply_delta,
    blob_digest,
    chunk_blob,
    compute_delta,
)
from repro.serving.backends import SequentialBackend
from repro.serving.envelope import (
    RequestClass,
    ServingRequest,
    ServingResponse,
    as_envelope,
)
from repro.serving.router import ReplicaGroup, ShardedService
from repro.serving.transport import (
    KIND_BATCH,
    KIND_REQUEST,
    KIND_RESPONSE,
    WIRE_VERSION,
    RemoteBackend,
    RemoteChannel,
    RemoteServable,
    bind_with_retry,
    connect_with_retry,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.workloads.partitioning import split_corpus, split_ratings
from tests.serving.test_envelope import DEADLINE, report_key, sim_clocks

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)
SEARCH_CONFIG = SynopsisConfig(n_iters=20, target_ratio=20.0, seed=7)


def request_key(env: ServingRequest) -> tuple:
    """Every envelope field except the payload (compared separately)."""
    return (env.deadline, env.request_class, env.priority, env.hedge,
            env.request_id, env.arrival_time)


def roundtrip(obj, kind=KIND_REQUEST, msg_id=7):
    buf = encode_frame(kind, msg_id, obj)
    got_kind, got_id, got, consumed = decode_frame(buf)
    assert got_kind == kind and got_id == msg_id and consumed == len(buf)
    return got


class TestFraming:
    def test_header_strictness(self):
        frame = encode_frame(KIND_REQUEST, 1, "x")
        with pytest.raises(ValueError):
            decode_frame(frame[:4])                    # shorter than header
        with pytest.raises(ValueError):
            decode_frame(frame[:-1])                   # truncated mid-frame
        with pytest.raises(ValueError):
            decode_frame(b"XXXX" + frame[4:])          # bad magic
        bad_version = frame[:4] + bytes([99]) + frame[5:]
        with pytest.raises(ValueError):
            decode_frame(bad_version)

    def test_request_roundtrip_grid(self, cf_request, search_query):
        """Envelopes survive the wire bit-identically across the option grid."""
        for payload in (cf_request, search_query):
            for cls in RequestClass:
                for hedge in (None, False, True):
                    for priority in (None, 0, 5):
                        env = ServingRequest(
                            payload=payload, deadline=DEADLINE,
                            request_class=cls, priority=priority,
                            hedge=hedge)
                        got = roundtrip(env)
                        assert request_key(got) == request_key(env)
                        assert type(got.payload) is type(env.payload)

    def test_cf_payload_bit_identical(self, cf_request):
        env = as_envelope(cf_request, DEADLINE)
        got = roundtrip(env)
        assert np.array_equal(got.payload.active_items,
                              env.payload.active_items)
        assert np.array_equal(got.payload.active_vals,
                              env.payload.active_vals)
        assert list(got.payload.target_items) == \
            list(env.payload.target_items)

    def test_report_roundtrip(self):
        report = ProcessingReport(
            groups_ranked=[3, 1, 2], groups_processed=2, work_units=17.5,
            synopsis_elapsed=0.003, total_elapsed=0.017, deadline=DEADLINE,
            hit_deadline=True, state_epoch=4, request_id=99,
            request_class="best_effort")
        got = roundtrip(report, kind=KIND_RESPONSE)
        assert report_key(got) == report_key(report)
        assert (got.request_id, got.request_class) == (99, "best_effort")

    def test_response_roundtrip(self, cf_serving_service, cf_request):
        env = as_envelope(cf_request, DEADLINE)
        resp = cf_serving_service.serve(env, clocks=sim_clocks(2))
        got: ServingResponse = roundtrip(resp, kind=KIND_RESPONSE)
        assert [report_key(r) for r in got.reports] == \
            [report_key(r) for r in resp.reports]
        assert got.state_epochs == resp.state_epochs
        assert got.request.request_id == env.request_id
        assert got.answer.numer == resp.answer.numer
        assert got.answer.denom == resp.answer.denom

    def test_wire_version_is_two_and_strict(self):
        """The protocol bump: v2 frames only; a v1 frame is refused.

        Decoding is *strict* on version — an old peer speaking wire
        version 1 fails loudly at the first frame instead of
        misinterpreting pickles, so mixed-version deployments cannot
        silently corrupt each other.
        """
        frame = encode_frame(KIND_REQUEST, 1, "x")
        assert WIRE_VERSION == 2
        assert frame[4] == WIRE_VERSION
        v1_frame = frame[:4] + bytes([1]) + frame[5:]
        with pytest.raises(ValueError):
            decode_frame(v1_frame)

    def test_payload_pickle_protocol_pinned(self):
        """Frames pickle at PICKLE_PROTOCOL, not the interpreter default."""
        frame = encode_frame(KIND_REQUEST, 1, {"q": [1, 2, 3]})
        header = len(encode_frame(KIND_REQUEST, 1, None)) - \
            len(pickle.dumps(None, PICKLE_PROTOCOL))
        # A protocol-N pickle opens with the PROTO opcode \x80 N.
        assert frame[header:header + 2] == bytes([0x80, PICKLE_PROTOCOL])

    def test_batch_kind_roundtrip(self):
        got = roundtrip([{"i": 1}, {"i": 2}], kind=KIND_BATCH)
        assert got == [{"i": 1}, {"i": 2}]

    def test_socket_read_write(self):
        listener = bind_with_retry()
        port = listener.getsockname()[1]
        client = connect_with_retry("127.0.0.1", port)
        server, _ = listener.accept()
        sent = write_frame(client, KIND_REQUEST, 42, {"q": [1, 2, 3]})
        kind, msg_id, obj, nbytes = read_frame(server)
        assert (kind, msg_id, obj) == (KIND_REQUEST, 42, {"q": [1, 2, 3]})
        assert nbytes == sent
        client.close()
        assert read_frame(server) is None  # clean EOF at a boundary
        for sock in (server, listener):
            sock.close()


class TestBindRetry:
    def test_port_zero_never_conflicts(self):
        socks = [bind_with_retry() for _ in range(4)]
        assert len({s.getsockname()[1] for s in socks}) == 4
        for s in socks:
            s.close()

    def test_retries_until_port_frees(self):
        holder = bind_with_retry()
        port = holder.getsockname()[1]

        def release():
            time.sleep(0.15)
            holder.close()

        threading.Thread(target=release, daemon=True).start()
        sock = bind_with_retry(port=port, retries=20, backoff=0.05)
        assert sock.getsockname()[1] == port
        sock.close()

    def test_gives_up_with_address_in_use(self):
        holder = bind_with_retry()
        port = holder.getsockname()[1]
        with pytest.raises(OSError):
            bind_with_retry(port=port, retries=2, backoff=0.01)
        holder.close()


@pytest.fixture()
def channel_pair():
    """A RemoteChannel client talking to a raw test-controlled socket."""
    listener = bind_with_retry()
    port = listener.getsockname()[1]
    client = connect_with_retry("127.0.0.1", port)
    server, _ = listener.accept()
    channel = RemoteChannel(client)
    yield channel, server
    channel.close()
    server.close()
    listener.close()


class TestMultiplexedChannel:
    """The tentpole: many in-flight msg_id-correlated RPCs per socket."""

    def test_out_of_order_replies_correlate(self, channel_pair):
        channel, server = channel_pair
        futures = [channel.submit({"i": i}) for i in range(4)]
        assert channel.in_flight == 4
        frames = [read_frame(server) for _ in range(4)]
        # Reply in reverse order: correlation is by msg_id, not arrival.
        for _kind, msg_id, obj, _n in reversed(frames):
            write_frame(server, KIND_RESPONSE, msg_id, obj["i"] * 10)
        assert [f.result(timeout=5) for f in futures] == [0, 10, 20, 30]
        assert channel.in_flight == 0

    def test_interleaved_concurrent_rpcs(self, channel_pair):
        channel, server = channel_pair
        n = 32

        def serve():
            backlog = []
            for _ in range(n):
                backlog.append(read_frame(server))
                if len(backlog) >= 3:      # drain in shuffled chunks
                    backlog.reverse()
                    for _k, msg_id, obj, _b in backlog:
                        write_frame(server, KIND_RESPONSE, msg_id, obj * 2)
                    backlog = []
            for _k, msg_id, obj, _b in backlog:
                write_frame(server, KIND_RESPONSE, msg_id, obj * 2)

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        results = [None] * n

        def rpc(i):
            results[i] = channel.call(i, timeout=10)

        threads = [threading.Thread(target=rpc, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        server_thread.join(timeout=10)
        assert results == [i * 2 for i in range(n)]

    def test_cancel_one_leaves_siblings(self, channel_pair):
        channel, server = channel_pair
        f_dead = channel.submit("a")
        f_live = channel.submit("b")
        frames = [read_frame(server) for _ in range(2)]
        assert f_dead.cancel()
        for _kind, msg_id, obj, _n in frames:
            write_frame(server, KIND_RESPONSE, msg_id, obj.upper())
        assert f_live.result(timeout=5) == "B"
        assert f_dead.cancelled()
        # The dropped late reply didn't poison the link: it still serves.
        f_next = channel.submit("c")
        _kind, msg_id, obj, _n = read_frame(server)
        write_frame(server, KIND_RESPONSE, msg_id, obj.upper())
        assert f_next.result(timeout=5) == "C"

    def test_eof_fails_all_pending(self, channel_pair):
        channel, server = channel_pair
        futures = [channel.submit(i) for i in range(3)]
        for _ in range(3):
            read_frame(server)
        server.close()
        for future in futures:
            with pytest.raises(ConnectionError):
                future.result(timeout=5)
        with pytest.raises(ConnectionError):
            channel.submit("after-eof")

    def test_in_flight_cap_blocks_submit(self):
        listener = bind_with_retry()
        port = listener.getsockname()[1]
        client = connect_with_retry("127.0.0.1", port)
        server, _ = listener.accept()
        channel = RemoteChannel(client, max_in_flight=1)
        try:
            first = channel.submit("one")
            submitted = threading.Event()

            def second():
                future = channel.submit("two")
                submitted.set()
                return future

            blocked = threading.Thread(target=second, daemon=True)
            blocked.start()
            assert not submitted.wait(timeout=0.2)  # cap holds it back
            _k, msg_id, obj, _b = read_frame(server)
            write_frame(server, KIND_RESPONSE, msg_id, obj)
            assert first.result(timeout=5) == "one"
            assert submitted.wait(timeout=5)        # slot freed, it sailed
            _k, msg_id, obj, _b = read_frame(server)
            write_frame(server, KIND_RESPONSE, msg_id, obj)
            blocked.join(timeout=5)
        finally:
            channel.close()
            server.close()
            listener.close()

    def test_max_in_flight_validated(self, channel_pair):
        channel, _server = channel_pair
        # Validation fires before any channel state is touched, so the
        # borrowed socket is left untouched.
        with pytest.raises(ValueError):
            RemoteChannel(channel._sock, max_in_flight=0)


class TestStateDelta:
    def blob(self, seed, n=60_000):
        return np.random.default_rng(seed).integers(
            0, 256, size=n, dtype=np.uint8).tobytes()

    def test_chunks_cover_blob(self):
        blob = self.blob(0)
        chunks = chunk_blob(blob)
        assert b"".join(c for _, c in chunks) == blob
        assert all(d == blob_digest(c) for d, c in chunks)

    def test_identity_delta_ships_no_literals(self):
        blob = self.blob(1)
        delta = compute_delta(blob, blob)
        assert delta.literal_bytes == 0
        assert apply_delta(blob, delta) == blob

    def test_small_edit_small_delta(self):
        base = self.blob(2)
        edited = bytearray(base)
        edited[30_000:30_200] = self.blob(3, 200)
        target = bytes(edited)
        delta = compute_delta(base, target)
        assert apply_delta(base, delta) == target
        # The whole point: an O(edit)-sized delta, not an O(blob) one.
        assert delta.literal_bytes < len(target) // 4
        assert delta.wire_cost() < len(target) // 2

    def test_wrong_base_raises(self):
        base, other = self.blob(4), self.blob(5)
        delta = compute_delta(base, other)
        with pytest.raises(DeltaMismatchError):
            apply_delta(other, delta)

    def test_empty_and_tiny_blobs(self):
        for target in (b"", b"x", b"y" * 300):
            delta = compute_delta(b"", target)
            assert apply_delta(b"", delta) == target


@pytest.fixture(scope="module")
def remote_backend():
    backend = RemoteBackend(n_workers=2)
    yield backend
    backend.close()


class TestRemoteBackend:
    def test_bit_identical_to_sequential(self, cf_serving_service,
                                         cf_request, remote_backend):
        env = as_envelope(cf_request, DEADLINE)
        ref_outcomes = SequentialBackend().run_tasks(
            cf_serving_service.build_tasks(env, clocks=sim_clocks(2)))
        got_outcomes = remote_backend.run_tasks(
            cf_serving_service.build_tasks(env, clocks=sim_clocks(2)))
        for ref, got in zip(ref_outcomes, got_outcomes):
            assert got.component == ref.component
            assert report_key(got.report) == report_key(ref.report)
            assert got.result.numer == ref.result.numer
            assert got.result.denom == ref.result.denom

    def test_state_published_once_per_epoch_per_worker(self, small_ratings,
                                                       cf_adapter,
                                                       cf_request):
        service = AccuracyTraderService(
            cf_adapter, split_ratings(small_ratings.matrix, 2),
            config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env = as_envelope(cf_request, DEADLINE)
            for _ in range(3):
                backend.run_tasks(service.build_tasks(
                    env, clocks=sim_clocks(2)))
            counters = backend.payload_counters()
            # One worker, two components, three requests: exactly two
            # full publications — state cost is per epoch, not per task.
            assert counters["state_publishes"] == 2
            assert counters["tasks_shipped"] == 6
            assert counters["task_bytes"] < counters["state_bytes"]
        finally:
            backend.close()

    def test_semantic_delta_on_hinted_update(self, small_ratings,
                                             cf_adapter, cf_request):
        parts = split_ratings(small_ratings.matrix, 2)
        service = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env = as_envelope(cf_request, DEADLINE)
            backend.run_tasks(service.build_tasks(env, clocks=sim_clocks(2)))
            before = backend.transport_counters()
            assert before["state_semantic_publishes"] == 0
            assert before["state_delta_publishes"] == 0
            service.change_points(0, parts[0], np.array([0, 1]))
            outcomes = backend.run_tasks(
                service.build_tasks(env, clocks=sim_clocks(2)))
            after = backend.transport_counters()
            # change_points records an UpdateHint, so the epoch
            # transition travels as a *semantic* delta — only the
            # re-aggregated groups — far cheaper than the full snapshot
            # it replaced, and answers match the in-process reference
            # over the new epoch.
            assert after["state_semantic_publishes"] == 1
            assert after["state_delta_publishes"] == 0
            assert after["state_full_publishes"] == \
                before["state_full_publishes"]
            assert 0 < after["state_semantic_bytes"] < \
                before["state_full_bytes"] / 2
            ref = SequentialBackend().run_tasks(
                service.build_tasks(env, clocks=sim_clocks(2)))
            for got, want in zip(outcomes, ref):
                assert report_key(got.report) == report_key(want.report)
        finally:
            backend.close()

    def test_cdc_fallback_without_hint(self, small_ratings, cf_adapter,
                                       cf_request):
        """An un-hinted epoch transition falls back to the CDC delta."""
        parts = split_ratings(small_ratings.matrix, 2)
        service = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env = as_envelope(cf_request, DEADLINE)
            tasks = service.build_tasks(env, clocks=sim_clocks(2))
            backend.run_tasks(tasks)
            before = backend.transport_counters()
            # Re-publish component 0's state with no hint: the store
            # has no semantic transition for this epoch pair, so the
            # wire drops to the content-defined byte delta (tiny here —
            # the bytes barely change).
            state = tasks[0].state_ref.resolve()
            service.store.publish(0, state)
            backend.run_tasks(service.build_tasks(env, clocks=sim_clocks(2)))
            after = backend.transport_counters()
            assert after["state_semantic_publishes"] == \
                before["state_semantic_publishes"]
            assert after["state_delta_publishes"] == \
                before["state_delta_publishes"] + 1
            assert after["state_full_publishes"] == \
                before["state_full_publishes"]
            assert after["state_delta_bytes"] < \
                before["state_full_bytes"] / 2
        finally:
            backend.close()

    def test_straggler_epoch_one_off(self, small_ratings, cf_adapter,
                                     cf_request):
        parts = split_ratings(small_ratings.matrix, 2)
        service = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env = as_envelope(cf_request, DEADLINE)
            old_tasks = service.build_tasks(env, clocks=sim_clocks(2))
            service.change_points(0, parts[0], np.array([0, 1]))
            new_tasks = service.build_tasks(env, clocks=sim_clocks(2))
            new_out = backend.run_tasks(new_tasks)
            old_out = backend.run_tasks(old_tasks)  # pinned to old epoch
            assert old_out[0].report.state_epoch == \
                old_tasks[0].state_ref.epoch
            assert new_out[0].report.state_epoch == \
                new_tasks[0].state_ref.epoch
            assert new_out[0].report.state_epoch > \
                old_out[0].report.state_epoch
        finally:
            backend.close()

    def test_batch_frame_bit_identical(self, small_ratings, cf_adapter,
                                       cf_request):
        """One KIND_BATCH frame == per-task results, bit for bit."""
        parts = split_ratings(small_ratings.matrix, 2)
        service = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env_a = as_envelope(cf_request, DEADLINE)
            env_b = as_envelope(cf_request, DEADLINE)
            tasks_a = service.build_tasks(env_a, clocks=sim_clocks(2))
            tasks_b = service.build_tasks(env_b, clocks=sim_clocks(2))
            # Two requests against the same component share one ref key
            # — the exact bucket shape BatchingBackend flushes.
            batch = [tasks_a[0], tasks_b[0]]
            futures = backend.submit_batch(batch)
            outcomes = [f.result(timeout=60) for f in futures]
            ref = SequentialBackend().run_tasks(batch)
            for got, want in zip(outcomes, ref):
                assert got.component == want.component
                assert report_key(got.report) == report_key(want.report)
                assert got.report.request_id == want.report.request_id
                assert got.result.numer == want.result.numer
                assert got.result.denom == want.result.denom
            counters = backend.transport_counters()
            assert counters["batches_shipped"] == 1
            assert backend.payload_counters()["tasks_shipped"] == 2
        finally:
            backend.close()

    def test_mixed_batch_degrades_per_task(self, small_ratings, cf_adapter,
                                           cf_request):
        """Tasks spanning components can't share a frame; ship per-task."""
        parts = split_ratings(small_ratings.matrix, 2)
        service = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        backend = RemoteBackend(n_workers=1)
        try:
            env = as_envelope(cf_request, DEADLINE)
            tasks = service.build_tasks(env, clocks=sim_clocks(2))
            futures = backend.submit_batch(tasks)  # components 0 and 1
            outcomes = [f.result(timeout=60) for f in futures]
            ref = SequentialBackend().run_tasks(
                service.build_tasks(env, clocks=sim_clocks(2)))
            for got, want in zip(outcomes, ref):
                assert report_key(got.report) == report_key(want.report)
            assert backend.transport_counters()["batches_shipped"] == 0
        finally:
            backend.close()

    def test_detached_ref_rejected(self, cf_serving_service, cf_request,
                                   remote_backend):
        env = as_envelope(cf_request, DEADLINE)
        task = cf_serving_service.build_tasks(env, clocks=sim_clocks(2))[0]
        detached = pickle.loads(pickle.dumps(task))
        detached.partition = None
        detached.synopsis = None
        with pytest.raises(StaleEpochError):
            remote_backend.submit_task(detached)

    def test_runner_tasks_run_inline(self, remote_backend):
        ran = []

        def runner(task):
            ran.append(task.component)
            return "local"

        from repro.serving.backends import ComponentTask

        task = ComponentTask(component=3, adapter=None, request=None,
                             deadline=1.0, runner=runner)
        assert remote_backend.submit_task(task).result() == "local"
        assert ran == [3]

    def test_resolve_backend_knows_remote(self):
        from repro.serving.backends import resolve_backend

        backend = resolve_backend("remote")
        assert isinstance(backend, RemoteBackend)
        backend.close()


@pytest.fixture(scope="module")
def cf_parts(small_ratings):
    return split_ratings(small_ratings.matrix, 2)


@pytest.fixture(scope="module")
def cf_remote_cluster(cf_adapter, cf_parts):
    """Two shards, each a service in its own OS process."""
    remotes = [RemoteServable.spawn(AccuracyTraderService, cf_adapter,
                                    [part], config=CF_CONFIG)
               for part in cf_parts]
    cluster = ShardedService([ReplicaGroup([r]) for r in remotes])
    yield cluster
    for remote in remotes:
        remote.close()


@pytest.fixture(scope="module")
def cf_local_cluster(cf_adapter, cf_parts):
    return ShardedService([
        ReplicaGroup([AccuracyTraderService(cf_adapter, [part],
                                            config=CF_CONFIG)])
        for part in cf_parts])


class TestRemoteCluster:
    def test_cf_bit_identical_to_in_process(self, cf_local_cluster,
                                            cf_remote_cluster, cf_request):
        env = as_envelope(cf_request, DEADLINE)
        local = cf_local_cluster.serve(env, clocks=sim_clocks(2))
        remote = cf_remote_cluster.serve(env, clocks=sim_clocks(2))
        assert remote.answer.numer == local.answer.numer
        assert remote.answer.denom == local.answer.denom
        assert remote.answer.active_mean == local.answer.active_mean
        assert [report_key(r) for r in remote.reports] == \
            [report_key(r) for r in local.reports]
        assert remote.state_epochs == local.state_epochs

    def test_cf_exact_matches(self, cf_local_cluster, cf_remote_cluster,
                              cf_request):
        local = cf_local_cluster.exact(cf_request)
        remote = cf_remote_cluster.exact(cf_request)
        assert remote.numer == local.numer
        assert remote.denom == local.denom

    def test_search_bit_identical_to_in_process(self, small_corpus,
                                                search_adapter,
                                                search_query):
        parts = split_corpus(small_corpus.partition, 2)
        local = ShardedService([
            ReplicaGroup([AccuracyTraderService(
                search_adapter, [part], config=SEARCH_CONFIG,
                i_max_fraction=0.4)])
            for part in parts])
        remotes = [RemoteServable.spawn(
            AccuracyTraderService, search_adapter, [part],
            config=SEARCH_CONFIG, i_max_fraction=0.4) for part in parts]
        try:
            remote = ShardedService([ReplicaGroup([r]) for r in remotes])
            env = as_envelope(search_query, DEADLINE)
            base = local.serve(env, clocks=sim_clocks(2))
            got = remote.serve(env, clocks=sim_clocks(2))
            assert [(h.doc_id, h.score) for h in got.answer] == \
                [(h.doc_id, h.score) for h in base.answer]
            assert [report_key(r) for r in got.reports] == \
                [report_key(r) for r in base.reports]
        finally:
            for r in remotes:
                r.close()

    def test_update_propagates_over_the_wire(self, cf_local_cluster,
                                             cf_remote_cluster, cf_parts,
                                             cf_request):
        changed = np.array([0, 1])
        local_epochs = cf_local_cluster.shards[0].change_points(
            0, cf_parts[0], changed)
        cf_remote_cluster.shards[0].change_points(0, cf_parts[0], changed)
        remote_epoch = \
            cf_remote_cluster.shards[0].replicas[0].component_epoch(0)
        assert remote_epoch == \
            cf_local_cluster.shards[0].replicas[0].component_epoch(0)
        env = as_envelope(cf_request, DEADLINE)
        local = cf_local_cluster.serve(env, clocks=sim_clocks(2))
        remote = cf_remote_cluster.serve(env, clocks=sim_clocks(2))
        assert remote.answer.numer == local.answer.numer
        assert remote.state_epochs == local.state_epochs
        assert local_epochs is not None

    def test_remote_spawn_failure_surfaces_traceback(self, cf_adapter):
        with pytest.raises(RuntimeError, match="failed to build"):
            RemoteServable.spawn(AccuracyTraderService, cf_adapter, [])

    def test_envelope_identity_survives_backend_wire(self,
                                                     cf_serving_service,
                                                     cf_request,
                                                     remote_backend):
        # Regression: the detached envelope rides the pickled task, so
        # worker processes stamp request_id / request_class into every
        # ProcessingReport exactly as the in-process path does.
        env = as_envelope(cf_request, DEADLINE)
        outcomes = remote_backend.run_tasks(
            cf_serving_service.build_tasks(env, clocks=sim_clocks(2)))
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.report.request_id == env.request_id
            assert outcome.report.request_class == env.request_class.value

    def test_envelope_identity_survives_cluster_wire(self,
                                                     cf_remote_cluster,
                                                     cf_request):
        # Same contract end to end: router -> 2 shards, each a service
        # in its own OS process.
        env = as_envelope(cf_request, DEADLINE)
        resp = cf_remote_cluster.serve(env, clocks=sim_clocks(2))
        assert len(resp.reports) == 2
        for report in resp.reports:
            assert report.request_id == env.request_id
            assert report.request_class == env.request_class.value

    def test_transport_counters_grow(self, cf_remote_cluster, cf_request):
        replica = cf_remote_cluster.shards[0].replicas[0]
        before = replica.transport_counters()
        cf_remote_cluster.serve(as_envelope(cf_request, DEADLINE),
                                clocks=sim_clocks(2))
        after = replica.transport_counters()
        assert after["bytes_sent"] > before["bytes_sent"]
        assert after["bytes_received"] > before["bytes_received"]


class TestMultiLinkServable:
    def test_n_links_validated(self, cf_adapter, cf_parts):
        with pytest.raises(ValueError):
            RemoteServable.spawn(AccuracyTraderService, cf_adapter,
                                 [cf_parts[0]], config=CF_CONFIG, n_links=0)

    def test_multi_link_concurrent_serving(self, cf_adapter, cf_parts,
                                           cf_request):
        """N pipelined links to one process, answers bit-identical."""
        remote = RemoteServable.spawn(
            AccuracyTraderService, cf_adapter, cf_parts, config=CF_CONFIG,
            n_links=2, max_in_flight=8)
        try:
            assert remote.n_links == 2
            local = AccuracyTraderService(cf_adapter, cf_parts,
                                          config=CF_CONFIG)
            env = as_envelope(cf_request, DEADLINE)
            base = local.serve(env, clocks=sim_clocks(2))
            results = [None] * 8

            def hit(i):
                results[i] = remote.serve(env, clocks=sim_clocks(2))

            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            for resp in results:
                assert resp is not None
                assert resp.answer.numer == base.answer.numer
                assert resp.answer.denom == base.answer.denom
                assert [report_key(r) for r in resp.reports] == \
                    [report_key(r) for r in base.reports]
            counters = remote.transport_counters()
            assert counters["bytes_sent"] > 0
            assert counters["bytes_received"] > 0
        finally:
            remote.close()
