"""Serving-layer fixtures: small live services for both paper workloads."""

from __future__ import annotations

import pytest

from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.workloads.partitioning import split_corpus, split_ratings


@pytest.fixture(scope="module")
def cf_serving_service(small_ratings, cf_adapter):
    """Two-component CF service (shared across a module; read-only use)."""
    return AccuracyTraderService(
        cf_adapter, split_ratings(small_ratings.matrix, 2),
        config=SynopsisConfig(n_iters=30, target_ratio=15.0, seed=7))


@pytest.fixture(scope="module")
def search_serving_service(small_corpus, search_adapter):
    """Two-component search service (shared across a module; read-only use)."""
    return AccuracyTraderService(
        search_adapter, split_corpus(small_corpus.partition, 2),
        config=SynopsisConfig(n_iters=25, target_ratio=20.0, seed=7),
        i_max_fraction=0.4)
