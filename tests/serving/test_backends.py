"""Backend parity: parallel execution must not change a single bit.

The whole point of pluggable backends is that execution *placement* is
orthogonal to the algorithm: thread- and process-pool backends must
return bit-identical merged answers and equivalent per-component
``ProcessingReport`` traces to the sequential reference, for both paper
services.  Simulated clocks make the traces deterministic, so equality is
exact, not approximate.
"""

from __future__ import annotations

import pytest

from repro.core.clock import SimulatedClock
from repro.serving.backends import (
    ComponentTask,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    resolve_backend,
    run_component_task,
)
from tests.helpers import process

DEADLINE = 0.05
SPEED = 400.0  # work units / s: tight enough that the deadline bites


def run_service(service, request, backend):
    clocks = [SimulatedClock(speed=SPEED)
              for _ in range(service.n_components)]
    return process(service, request, DEADLINE, clocks=clocks, backend=backend)


def report_key(report):
    return (report.groups_ranked, report.groups_processed, report.work_units,
            report.synopsis_elapsed, report.total_elapsed, report.deadline,
            report.hit_deadline, report.hit_imax, report.exhausted)


@pytest.fixture(scope="module", params=["thread", "process"])
def parallel_backend(request):
    if request.param == "thread":
        backend = ThreadPoolBackend(max_workers=4)
    else:
        backend = ProcessPoolBackend(max_workers=2)
    yield backend
    backend.close()


class TestCFParity:
    def test_answers_bit_identical(self, cf_serving_service, cf_request,
                                   parallel_backend):
        base, base_reports = run_service(cf_serving_service, cf_request,
                                         SequentialBackend())
        par, par_reports = run_service(cf_serving_service, cf_request,
                                       parallel_backend)
        assert par.active_mean == base.active_mean
        assert par.numer == base.numer
        assert par.denom == base.denom
        for item in cf_request.target_items:
            assert par.predict(item) == base.predict(item)
        assert [report_key(r) for r in par_reports] == \
            [report_key(r) for r in base_reports]

    def test_deadline_actually_bites(self, cf_serving_service, cf_request):
        # Guard: the parity above must cover the truncated-refinement path,
        # not just process-everything.
        _, reports = run_service(cf_serving_service, cf_request,
                                 SequentialBackend())
        assert any(r.hit_deadline for r in reports)


class TestSearchParity:
    def test_answers_bit_identical(self, search_serving_service, search_query,
                                   parallel_backend):
        base, base_reports = run_service(search_serving_service, search_query,
                                         SequentialBackend())
        par, par_reports = run_service(search_serving_service, search_query,
                                       parallel_backend)
        assert [(h.doc_id, h.score) for h in par] == \
            [(h.doc_id, h.score) for h in base]
        assert [report_key(r) for r in par_reports] == \
            [report_key(r) for r in base_reports]


class TestBackendMechanics:
    def test_outcomes_preserve_task_order(self, cf_serving_service,
                                          cf_request, parallel_backend):
        states = [cf_serving_service.component_state(c)
                  for c in range(cf_serving_service.n_components)]
        tasks = [
            ComponentTask(component=c, adapter=cf_serving_service.adapter,
                          partition=s.partition, synopsis=s.synopsis,
                          request=cf_request, deadline=DEADLINE,
                          clock=SimulatedClock(speed=SPEED))
            for c, s in enumerate(states)
        ]
        outcomes = parallel_backend.run_tasks(tasks)
        assert [o.component for o in outcomes] == list(range(len(tasks)))
        inline = [run_component_task(t) for t in tasks]
        # Clocks are stateful: inline re-execution reuses charged clocks,
        # so compare structure-only fields.
        assert [o.report.groups_ranked for o in outcomes] == \
            [o.report.groups_ranked for o in inline]

    def test_backend_reusable_across_requests(self, cf_serving_service,
                                              cf_request, parallel_backend):
        first, _ = run_service(cf_serving_service, cf_request,
                               parallel_backend)
        second, _ = run_service(cf_serving_service, cf_request,
                                parallel_backend)
        assert first.numer == second.numer

    def test_resolve_backend(self):
        assert resolve_backend(None).name == "sequential"
        assert resolve_backend("sequential").name == "sequential"
        assert resolve_backend("thread").name == "thread"
        assert resolve_backend("process").name == "process"
        seq = SequentialBackend()
        assert resolve_backend(seq) is seq
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_submit_task_inline_on_sequential(self, cf_serving_service,
                                              cf_request):
        state = cf_serving_service.component_state(0)
        task = ComponentTask(component=0, adapter=cf_serving_service.adapter,
                             partition=state.partition,
                             synopsis=state.synopsis, request=cf_request,
                             deadline=DEADLINE,
                             clock=SimulatedClock(speed=SPEED))
        future = SequentialBackend().submit_task(task)
        assert future.done()  # inline: completed before returning
        outcome = future.result()
        assert outcome.component == 0
        inline = run_component_task(ComponentTask(
            component=0, adapter=cf_serving_service.adapter,
            partition=state.partition, synopsis=state.synopsis,
            request=cf_request, deadline=DEADLINE,
            clock=SimulatedClock(speed=SPEED)))
        assert outcome.report.groups_ranked == inline.report.groups_ranked

    def test_submit_task_carries_exceptions(self, cf_serving_service,
                                            cf_request):
        state = cf_serving_service.component_state(0)
        bad = ComponentTask(component=0, adapter=cf_serving_service.adapter,
                            partition=state.partition,
                            synopsis=state.synopsis, request=cf_request,
                            deadline=-1.0,  # rejected by the processor
                            clock=SimulatedClock(speed=SPEED))
        future = SequentialBackend().submit_task(bad)
        assert isinstance(future.exception(), ValueError)

    def test_submit_task_matches_run_tasks(self, cf_serving_service,
                                           cf_request, parallel_backend):
        states = [cf_serving_service.component_state(c)
                  for c in range(cf_serving_service.n_components)]

        def make_tasks():
            return [
                ComponentTask(component=c,
                              adapter=cf_serving_service.adapter,
                              partition=s.partition, synopsis=s.synopsis,
                              request=cf_request, deadline=DEADLINE,
                              clock=SimulatedClock(speed=SPEED))
                for c, s in enumerate(states)
            ]

        futures = [parallel_backend.submit_task(t) for t in make_tasks()]
        submitted = [f.result() for f in futures]
        ran = parallel_backend.run_tasks(make_tasks())
        assert [o.report.groups_ranked for o in submitted] == \
            [o.report.groups_ranked for o in ran]

    def test_queued_task_cancellable(self, cf_serving_service, cf_request):
        # One worker: the first (stalling) task occupies it, so the
        # second is still queued and must be cancellable — the property
        # the router's tied-request cancellation relies on.
        from repro.serving.adapters import IOStallAdapter

        state = cf_serving_service.component_state(0)
        stall_adapter = IOStallAdapter(cf_serving_service.adapter,
                                       synopsis_stall=0.2)

        def task(adapter):
            return ComponentTask(component=0, adapter=adapter,
                                 partition=state.partition,
                                 synopsis=state.synopsis,
                                 request=cf_request, deadline=10.0,
                                 clock=SimulatedClock(speed=SPEED))

        with ThreadPoolBackend(max_workers=1) as backend:
            running = backend.submit_task(task(stall_adapter))
            queued = backend.submit_task(task(cf_serving_service.adapter))
            assert queued.cancel()          # still queued: cancellable
            assert not running.cancel()     # already running: completes
            assert running.result().component == 0
        assert queued.cancelled()

    def test_service_accepts_backend_name(self, small_ratings, cf_adapter,
                                          cf_request):
        from repro.core.builder import SynopsisConfig
        from repro.core.service import AccuracyTraderService
        from repro.workloads.partitioning import split_ratings

        svc = AccuracyTraderService(
            cf_adapter, split_ratings(small_ratings.matrix, 2),
            config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7),
            backend="thread")
        try:
            answer, reports = process(svc, cf_request, deadline=10.0)
            assert len(reports) == 2
            exact = svc.exact(cf_request)
            for item in cf_request.target_items:
                assert answer.predict(item) == pytest.approx(exact.predict(item))
        finally:
            svc.backend.close()
