"""Load generation determinism, latency accounting, and update safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import simulated_clock_factory
from repro.core.service import AccuracyTraderService
from repro.serving.backends import SequentialBackend, ThreadPoolBackend
from repro.serving.harness import ServingHarness
from repro.serving.loadgen import LoadGenerator
from repro.workloads.partitioning import split_ratings
from tests.helpers import process


def cf_request_factory(matrix):
    """Factory mapping (i, rng) to a CFRequest over ``matrix``'s users."""
    from repro.core.adapters import CFRequest

    def factory(i, rng):
        user = i % matrix.n_users
        ids, vals = matrix.user_ratings(user)
        n = max(2, int(0.8 * ids.size))
        keep = np.sort(rng.choice(ids.size, size=min(n, ids.size),
                                  replace=False))
        rated = set(ids[keep].tolist())
        targets = [t for t in range(matrix.n_items) if t not in rated][:5]
        return CFRequest(active_items=ids[keep], active_vals=vals[keep],
                         target_items=targets)

    return factory


@pytest.fixture(scope="module")
def cf_loadgen(small_ratings):
    return LoadGenerator(cf_request_factory(small_ratings.matrix), seed=17)


class TestLoadGenerator:
    def test_poisson_deterministic(self, small_ratings):
        gens = [LoadGenerator(cf_request_factory(small_ratings.matrix),
                              seed=17) for _ in range(2)]
        loads = [g.poisson(rate=50.0, duration=2.0) for g in gens]
        np.testing.assert_array_equal(loads[0].arrivals, loads[1].arrivals)
        assert [r.target_items for r in loads[0].requests] == \
            [r.target_items for r in loads[1].requests]

    def test_poisson_count_near_expectation(self, cf_loadgen):
        load = cf_loadgen.poisson(rate=100.0, duration=4.0)
        # n ~ Poisson(400): 5 sigma is +-100.
        assert 300 <= load.n_requests <= 500
        assert np.all(np.diff(load.arrivals) >= 0)
        assert load.n_requests == len(load.requests)

    def test_seed_changes_stream(self, small_ratings):
        factory = cf_request_factory(small_ratings.matrix)
        a = LoadGenerator(factory, seed=1).poisson(50.0, 2.0)
        b = LoadGenerator(factory, seed=2).poisson(50.0, 2.0)
        assert a.n_requests != b.n_requests or \
            not np.array_equal(a.arrivals, b.arrivals)

    def test_bursty_concentrates_in_on_windows(self, cf_loadgen):
        period, duty = 1.0, 0.25
        load = cf_loadgen.bursty(base_rate=5.0, burst_rate=200.0,
                                 period=period, duty=duty, duration=8.0)
        phase = load.arrivals % period
        on = int(np.sum(phase < duty * period))
        off = load.n_requests - on
        # On-rate is 40x off-rate over a window 1/3 the size: the on
        # windows must dominate decisively.
        assert on > 5 * off

    def test_fixed_replay(self, cf_loadgen):
        load = cf_loadgen.fixed([0.0, 0.1, 0.2])
        assert load.n_requests == 3
        assert load.duration == pytest.approx(0.2)

    def test_unsorted_fixed_rejected(self, cf_loadgen):
        with pytest.raises(ValueError):
            cf_loadgen.fixed([0.2, 0.1])

    def test_closed_loop_think_times(self, cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=4, n_requests=10,
                                      think_time=0.01, think_jitter=0.02)
        assert load.n_requests == 10
        assert np.all(load.think_times >= 0.01)
        assert np.all(load.think_times < 0.03)


class TestServingHarness:
    def test_open_loop_latency_accounting(self, cf_serving_service,
                                          cf_loadgen):
        load = cf_loadgen.poisson(rate=200.0, duration=0.15)
        assert load.n_requests > 0
        harness = ServingHarness(
            cf_serving_service, deadline=0.05,
            backend=SequentialBackend(),
            clock_factory=simulated_clock_factory(500.0))
        stats = harness.run_open_loop(load)
        assert stats.n_requests == load.n_requests
        assert stats.n_components == cf_serving_service.n_components
        assert stats.sub_latencies.size == \
            load.n_requests * cf_serving_service.n_components
        # sub latencies are the reports' (simulated, deterministic)
        # processing times, request-major.
        expected = [rep.total_elapsed for reps in stats.reports
                    for rep in reps]
        np.testing.assert_array_equal(stats.sub_latencies, expected)
        assert all(a is not None for a in stats.answers)
        assert np.all(stats.request_latencies > 0)
        assert stats.duration > 0
        assert stats.throughput() > 0
        assert stats.p50() <= stats.p95() <= stats.p99()
        assert stats.deadline_miss_rate(0.0) == 1.0

    def test_simulated_processing_deterministic(self, cf_serving_service,
                                                cf_loadgen):
        def run():
            load = cf_loadgen.poisson(rate=150.0, duration=0.1)
            harness = ServingHarness(
                cf_serving_service, deadline=0.05,
                backend=SequentialBackend(),
                clock_factory=simulated_clock_factory(500.0))
            return harness.run_open_loop(load)

        a, b = run(), run()
        np.testing.assert_array_equal(a.sub_latencies, b.sub_latencies)

    def test_closed_loop(self, cf_serving_service, cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=3, n_requests=9)
        with ThreadPoolBackend(max_workers=4) as backend:
            harness = ServingHarness(cf_serving_service, deadline=10.0,
                                     backend=backend)
            stats = harness.run_closed_loop(load)
        assert stats.n_requests == 9
        assert all(a is not None for a in stats.answers)
        assert np.all(stats.request_latencies > 0)
        assert stats.throughput() > 0

    def test_accuracy_vs_deadline_curve(self, cf_serving_service,
                                        cf_loadgen):
        requests = [cf_loadgen.request_factory(i, np.random.default_rng(i))
                    for i in range(4)]

        def accuracy(answer, exact, request):
            errs = [abs(answer.predict(t) - exact.predict(t))
                    for t in request.target_items]
            return -float(np.mean(errs)) if errs else 0.0

        harness = ServingHarness(
            cf_serving_service, deadline=0.05,
            backend=SequentialBackend(),
            clock_factory=simulated_clock_factory(300.0))
        curve = harness.accuracy_vs_deadline(requests,
                                             deadlines=[0.002, 0.05, 10.0],
                                             accuracy_fn=accuracy)
        assert [p.deadline for p in curve] == [0.002, 0.05, 10.0]
        depths = [p.groups_processed_mean for p in curve]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]
        # A generous deadline refines everything: zero error vs exact.
        assert curve[-1].accuracy_mean == pytest.approx(0.0, abs=1e-9)
        assert curve[-1].accuracy_mean >= curve[0].accuracy_mean
        # Stage 1 always completes, then at most one overshoot group: the
        # tight deadline's latency is bounded by synopsis work + one group.
        speed = 300.0
        max_syn = max(float(s.n_aggregated)
                      for s in cf_serving_service.synopses)
        max_group = max(float(s.index.group_sizes().max())
                        for s in cf_serving_service.synopses)
        assert curve[0].latency_p95 <= 0.002 + (max_syn + max_group) / speed
        assert curve[0].latency_p95 < curve[-1].latency_p95


class TestHarnessBackendLifecycle:
    def test_harness_closes_backend_resolved_from_spec(self,
                                                       cf_serving_service,
                                                       cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=2)
        with ServingHarness(cf_serving_service, deadline=10.0,
                            backend="thread") as harness:
            harness.run_closed_loop(load)
            assert harness.backend._pool is not None
        # Exit shut the pool the harness created from the string spec.
        assert harness.backend._pool is None

    def test_harness_leaves_caller_backend_alone(self, cf_serving_service,
                                                 cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=2)
        with ThreadPoolBackend(max_workers=2) as backend:
            with ServingHarness(cf_serving_service, deadline=10.0,
                                backend=backend) as harness:
                harness.run_closed_loop(load)
            assert backend._pool is not None


class TestConcurrentUpdates:
    @pytest.fixture()
    def mutable_service(self, small_ratings, cf_adapter):
        return AccuracyTraderService(
            cf_adapter, split_ratings(small_ratings.matrix, 2),
            config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=9))

    @staticmethod
    def add_one_user(component):
        def apply(service):
            part = service.partitions[component]
            new = part.with_rows_appended(
                np.zeros(3, dtype=np.int64), np.array([0, 1, 2]),
                np.array([4.0, 3.5, 5.0]))
            return service.add_points(component, new,
                                      [part.n_users])
        return apply

    def test_harness_updates_interleave(self, mutable_service, cf_loadgen):
        load = cf_loadgen.poisson(rate=150.0, duration=0.4)
        valid_group_counts = {mutable_service.synopses[0].n_aggregated}
        applied = []

        def tracked_update(service):
            report = self.add_one_user(0)(service)
            valid_group_counts.add(service.synopses[0].n_aggregated)
            applied.append(report)
            return report

        with ThreadPoolBackend(max_workers=4) as backend:
            harness = ServingHarness(mutable_service, deadline=10.0,
                                     backend=backend, max_concurrency=8)
            stats = harness.run_open_loop(
                load, updates=[(0.05, tracked_update),
                               (0.15, tracked_update),
                               (0.25, tracked_update)])

        assert len(stats.update_log) == len(applied) > 0
        assert all(a is not None for a in stats.answers)
        # No torn reads: every request saw a complete snapshot, i.e. its
        # component-0 ranking covers exactly the group set of *some*
        # published synopsis version — never a mix.
        for reps in stats.reports:
            assert len(reps[0].groups_ranked) in valid_group_counts
            assert reps[0].exhausted  # generous deadline: full refinement
        # Partition invariant still holds after the dust settles.
        syn = mutable_service.synopses[0]
        syn.index.validate(expected_records=mutable_service.adapter.record_ids(
            mutable_service.partitions[0]))

    def test_raw_thread_stress(self, mutable_service, cf_loadgen):
        """Spam requests from threads while updates land on both components."""
        requests = [cf_loadgen.request_factory(i, np.random.default_rng(i))
                    for i in range(6)]
        valid_counts = [{mutable_service.synopses[c].n_aggregated}
                        for c in range(2)]
        failures = []
        observed = []
        stop = threading.Event()

        def spam():
            with ThreadPoolBackend(max_workers=2) as backend:
                k = 0
                while not stop.is_set():
                    try:
                        _, reps = process(mutable_service, 
                            requests[k % len(requests)], 10.0,
                            backend=backend)
                        observed.append(tuple(len(r.groups_ranked)
                                              for r in reps))
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append(exc)
                        return
                    k += 1

        workers = [threading.Thread(target=spam) for _ in range(3)]
        for w in workers:
            w.start()
        try:
            for round_ in range(3):
                for c in range(2):
                    self.add_one_user(c)(mutable_service)
                    valid_counts[c].add(
                        mutable_service.synopses[c].n_aggregated)
        finally:
            stop.set()
            for w in workers:
                w.join()

        assert not failures
        assert observed
        for counts in observed:
            for c, n in enumerate(counts):
                assert n in valid_counts[c]


class TestPerClassBreakdown:
    """Per-request-class latency/served accounting in ServingRunStats."""

    def mixed_loadgen(self, matrix):
        from repro.serving.envelope import RequestClass, ServingRequest

        base = cf_request_factory(matrix)
        classes = [RequestClass.ACCURACY_CRITICAL,
                   RequestClass.LATENCY_CRITICAL,
                   RequestClass.BEST_EFFORT]

        def factory(i, rng):
            return ServingRequest(payload=base(i, rng),
                                  request_class=classes[i % len(classes)])

        return LoadGenerator(factory, seed=31)

    def test_closed_loop_classes_accounted(self, cf_serving_service,
                                           small_ratings):
        load = self.mixed_loadgen(small_ratings.matrix).closed_loop(
            n_clients=2, n_requests=9)
        harness = ServingHarness(cf_serving_service, deadline=10.0,
                                 backend=SequentialBackend())
        stats = harness.run_closed_loop(load)
        assert stats.class_served == {"accuracy_critical": 3,
                                      "latency_critical": 3,
                                      "best_effort": 3}
        assert stats.class_shed == {}
        for key, lats in stats.class_latencies.items():
            assert len(lats) == 3
            assert np.all(lats > 0)
        assert np.isfinite(stats.class_percentile("best_effort", 99.0))
        # Unknown class: nan, not a crash.
        assert np.isnan(stats.class_percentile("no_such_class", 50.0))
        # Reports carry the class end to end.
        classes = [reps[0].request_class for reps in stats.reports]
        assert classes[:3] == ["accuracy_critical", "latency_critical",
                               "best_effort"]

    def test_bare_payloads_get_default_class(self, cf_serving_service,
                                             cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=4)
        harness = ServingHarness(cf_serving_service, deadline=10.0,
                                 backend=SequentialBackend())
        stats = harness.run_closed_loop(load)
        assert stats.class_served == {"latency_critical": 4}

    def test_envelope_deadline_override_per_request(self, cf_serving_service,
                                                    small_ratings):
        from repro.serving.envelope import ServingRequest

        base = cf_request_factory(small_ratings.matrix)

        def factory(i, rng):
            # Odd requests carry a tiny per-request deadline override.
            deadline = 1e-9 if i % 2 else None
            return ServingRequest(payload=base(i, rng), deadline=deadline)

        load = LoadGenerator(factory, seed=33).closed_loop(
            n_clients=1, n_requests=4)
        harness = ServingHarness(
            cf_serving_service, deadline=10.0,
            backend=SequentialBackend(),
            clock_factory=simulated_clock_factory(400.0))
        stats = harness.run_closed_loop(load)
        deadlines = [reps[0].deadline for reps in stats.reports]
        assert deadlines == [10.0, 1e-9, 10.0, 1e-9]
        # The overridden requests hit their (instant) deadline; the
        # harness-default ones refine fully.
        hit = [any(r.hit_deadline for r in reps) for reps in stats.reports]
        assert hit == [False, True, False, True]


class CountingBackend(SequentialBackend):
    """Sequential execution that keeps real payload counters.

    Stands in for a remote backend in routing tests: every task is
    pickled (as the wire would) and counted, so a run whose counters
    stay at zero provably never dispatched through this backend.
    """

    def __init__(self):
        super().__init__()
        self._task_bytes = 0
        self._tasks_shipped = 0

    def run_tasks(self, tasks):
        import pickle

        tasks = list(tasks)
        for task in tasks:
            self._task_bytes += len(pickle.dumps(task))
            self._tasks_shipped += 1
        return super().run_tasks(tasks)

    def payload_counters(self):
        return {"task_bytes": self._task_bytes, "state_bytes": 0,
                "tasks_shipped": self._tasks_shipped, "state_publishes": 0}


class TestRoutedPayloadCounters:
    """Payload accounting must follow the routing structure.

    Regression: the harness used to read counters from ``service.
    backend`` only.  A :class:`ReplicaGroup` has no ``backend``
    attribute — its *replicas* do — so a harness run over a routed
    service reported zero payload bytes while every replica backend was
    busily shipping tasks.
    """

    def build_group(self, cf_adapter, small_ratings, n_replicas=2):
        from repro.serving.router import ReplicaGroup

        parts = split_ratings(small_ratings.matrix, 2)
        config = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)
        replicas = [AccuracyTraderService(cf_adapter, parts, config=config,
                                          backend=CountingBackend())
                    for _ in range(n_replicas)]
        return ReplicaGroup(replicas)

    def test_replica_backends_are_counted(self, cf_adapter, small_ratings,
                                          cf_loadgen):
        group = self.build_group(cf_adapter, small_ratings)
        load = cf_loadgen.fixed([0.0, 0.01, 0.02, 0.03])
        harness = ServingHarness(
            group, deadline=0.05, backend=None,
            clock_factory=simulated_clock_factory(500.0))
        stats = harness.run_open_loop(load)
        # 4 requests x 2 components, split round-robin over 2 replicas.
        assert stats.tasks_shipped == load.n_requests * group.n_components
        assert stats.task_bytes > 0
        assert stats.bytes_per_request() > 0

    def test_backend_walk_covers_a_2x2_cluster(self, cf_adapter,
                                               small_ratings):
        from repro.serving.harness import payload_backend_of
        from repro.serving.router import ShardedService

        cluster = ShardedService(
            [self.build_group(cf_adapter, small_ratings)
             for _ in range(2)],
            backend=CountingBackend())
        found = payload_backend_of(None, cluster)
        # The cluster's own backend plus all four replicas', each once.
        assert len(found) == 5
        assert len({id(b) for b in found}) == 5
        # A harness-level override joins the walk, deduplicated.
        assert len(payload_backend_of(cluster.backend, cluster)) == 5
        extra = SequentialBackend()
        assert len(payload_backend_of(extra, cluster)) == 6


class TestEmptyRunStats:
    """All-shed and zero-arrival runs must report, not crash.

    Regression: percentile helpers indexed into empty latency arrays,
    so a run in which admission shed everything (a legitimate overload
    outcome) raised ``IndexError`` instead of producing stats.
    """

    def test_thread_harness_empty_load(self, cf_serving_service):
        import math

        from repro.serving.loadgen import OpenLoopLoad

        load = OpenLoopLoad(arrivals=np.zeros(0), requests=[])
        harness = ServingHarness(cf_serving_service, deadline=0.05,
                                 backend=SequentialBackend(),
                                 clock_factory=simulated_clock_factory(500.0))
        stats = harness.run_open_loop(load)
        assert stats.n_requests == 0
        for value in (stats.p50(), stats.p95(), stats.p99(),
                      stats.mean_latency(), stats.component_tail(),
                      stats.request_percentile(10.0)):
            assert math.isnan(value)
        assert stats.class_breakdown() == {}

    def test_async_harness_all_shed(self, cf_serving_service, cf_loadgen):
        import math

        from repro.serving.admission import AdmissionController, ShedPolicy
        from repro.serving.aio import AsyncServingHarness

        class ShedEverything(ShedPolicy):
            name = "shed_everything"

            def on_arrival(self, snapshot):
                return "overload_drill"

        load = cf_loadgen.fixed([0.0, 0.005, 0.01])
        harness = AsyncServingHarness(
            cf_serving_service, deadline=0.05,
            admission=AdmissionController(policies=[ShedEverything()]))
        stats = harness.run_open_loop(load)
        assert stats.n_requests == 0
        assert stats.shed == 3
        assert stats.shed_reasons == {"overload_drill": 3}
        for value in (stats.p50(), stats.p99(), stats.mean_latency(),
                      stats.component_tail()):
            assert math.isnan(value)
        breakdown = stats.class_breakdown()
        assert breakdown["latency_critical"]["shed"] == 3
        assert breakdown["latency_critical"]["served"] == 0
        assert math.isnan(breakdown["latency_critical"]["p99_s"])
