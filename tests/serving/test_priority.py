"""Priority-aware shedding over the typed envelope, and CoDel-style delay shed.

Pins the ISSUE's acceptance invariant at three levels:

- policy unit tests over manufactured snapshots (the structural
  threshold-monotonicity guarantee: whenever an accuracy-critical
  request is shed, a best-effort one arriving at that instant is too);
- controller integration on one event loop (typed envelopes through
  ``acquire(request=...)``);
- a live overloaded async-harness run with a mixed-class workload:
  best-effort traffic absorbs the overload, accuracy-critical traffic
  is never shed, and the per-class breakdown lands in
  ``ServingRunStats``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.adapters import CFAdapter
from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving.admission import (
    AdmissionController,
    AdmissionSnapshot,
    PriorityShedPolicy,
    QueueDelayShed,
)
from repro.serving.aio import (
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
)
from repro.serving.envelope import RequestClass, ServingRequest
from repro.serving.loadgen import LoadGenerator
from repro.workloads.partitioning import split_ratings

from tests.serving.test_harness import cf_request_factory

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)

AC = RequestClass.ACCURACY_CRITICAL
LC = RequestClass.LATENCY_CRITICAL
BE = RequestClass.BEST_EFFORT


def snapshot(pending=0, max_pending=10, inflight=4, max_inflight=4,
             deadline=1.0, waited=0.0, request_class=None, priority=None):
    return AdmissionSnapshot(
        pending=pending, max_pending=max_pending, inflight=inflight,
        max_inflight=max_inflight, deadline=deadline, waited=waited,
        request_class=request_class, priority=priority)


class TestPriorityShedPolicy:
    def test_free_slots_never_shed(self):
        policy = PriorityShedPolicy()
        snap = snapshot(pending=10, inflight=3, request_class=BE)
        assert policy.on_arrival(snap) is None  # a slot is free: no queueing

    def test_classes_shed_in_order(self):
        policy = PriorityShedPolicy()
        # Queue at 60%: only best-effort sheds.
        assert policy.on_arrival(snapshot(pending=6, request_class=BE)) == \
            "class_best_effort"
        assert policy.on_arrival(snapshot(pending=6, request_class=LC)) \
            is None
        assert policy.on_arrival(snapshot(pending=6, request_class=AC)) \
            is None
        # Queue at 90%: latency-critical joins.
        assert policy.on_arrival(snapshot(pending=9, request_class=LC)) == \
            "class_latency_critical"
        assert policy.on_arrival(snapshot(pending=9, request_class=AC)) \
            is None
        # Queue full: everything sheds, accuracy-critical last of all.
        assert policy.on_arrival(snapshot(pending=10, request_class=AC)) == \
            "class_accuracy_critical"

    def test_untyped_requests_get_default_class(self):
        policy = PriorityShedPolicy()
        # request_class=None behaves as LATENCY_CRITICAL (envelope default).
        assert policy.on_arrival(snapshot(pending=6)) is None
        assert policy.on_arrival(snapshot(pending=9)) == \
            "class_latency_critical"

    def test_structural_invariant(self):
        # Whenever accuracy-critical is shed, the lower classes would be
        # shed at the same instant — for any valid thresholds and state.
        policy = PriorityShedPolicy(
            thresholds={BE: 0.3, "latency_critical": 0.6, AC: 0.8})
        for pending in range(0, 11):
            for inflight in (3, 4):
                shed_ac = policy.on_arrival(snapshot(
                    pending=pending, inflight=inflight, request_class=AC))
                if shed_ac is not None:
                    for cls in (LC, BE):
                        assert policy.on_arrival(snapshot(
                            pending=pending, inflight=inflight,
                            request_class=cls)) is not None

    def test_zero_capacity_queue(self):
        policy = PriorityShedPolicy()
        # max_pending=0: occupancy is saturated, every class sheds once
        # the slots are busy.
        assert policy.on_arrival(snapshot(pending=0, max_pending=0,
                                          request_class=AC)) is not None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PriorityShedPolicy(thresholds={BE: 0.0})
        with pytest.raises(ValueError):
            PriorityShedPolicy(thresholds={BE: 1.5})
        with pytest.raises(ValueError):
            # Accuracy-critical must never shed before best-effort.
            PriorityShedPolicy(thresholds={AC: 0.2, BE: 0.9})


class TestQueueDelayShed:
    def make(self, **kwargs):
        self.now = 0.0
        policy = QueueDelayShed(target=0.010, interval=0.100,
                                time_fn=lambda: self.now, **kwargs)
        return policy

    def test_below_target_never_sheds(self):
        policy = self.make()
        for _ in range(100):
            self.now += 0.01
            assert policy.on_dispatch(snapshot(waited=0.005)) is None

    def test_standing_delay_starts_dropping_after_interval(self):
        policy = self.make(exempt=())
        # Above target, but not yet *standing* for a full interval.
        assert policy.on_dispatch(snapshot(waited=0.05)) is None
        self.now = 0.05
        assert policy.on_dispatch(snapshot(waited=0.05)) is None
        # One interval after the first bad sample: dropping starts.
        self.now = 0.11
        assert policy.on_dispatch(snapshot(waited=0.05)) == "queue_delay"

    def test_drop_cadence_tightens(self):
        policy = self.make(exempt=())
        policy.on_dispatch(snapshot(waited=0.05))
        self.now = 0.11
        assert policy.on_dispatch(snapshot(waited=0.05)) == "queue_delay"
        # Next drop only after interval/sqrt(1) more...
        self.now = 0.15
        assert policy.on_dispatch(snapshot(waited=0.05)) is None
        self.now = 0.22
        assert policy.on_dispatch(snapshot(waited=0.05)) == "queue_delay"
        # ...then interval/sqrt(2): the cadence tightens.
        self.now = 0.22 + 0.100 / np.sqrt(2) + 1e-6
        assert policy.on_dispatch(snapshot(waited=0.05)) == "queue_delay"

    def test_good_sample_resets(self):
        policy = self.make(exempt=())
        policy.on_dispatch(snapshot(waited=0.05))
        self.now = 0.11
        assert policy.on_dispatch(snapshot(waited=0.05)) == "queue_delay"
        # One sojourn back under the target ends the episode.
        assert policy.on_dispatch(snapshot(waited=0.001)) is None
        self.now = 0.12
        assert policy.on_dispatch(snapshot(waited=0.05)) is None  # re-arming

    def test_accuracy_critical_exempt_by_default(self):
        policy = self.make()
        policy.on_dispatch(snapshot(waited=0.05, request_class=BE))
        self.now = 0.2
        assert policy.on_dispatch(snapshot(waited=0.05,
                                           request_class=BE)) is not None
        assert policy.on_dispatch(snapshot(waited=0.05,
                                           request_class=AC)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDelayShed(target=0.0)
        with pytest.raises(ValueError):
            QueueDelayShed(interval=-1.0)


class TestControllerWithEnvelopes:
    def test_acquire_needs_some_deadline(self):
        async def go():
            ctl = AdmissionController()
            with pytest.raises(ValueError):
                await ctl.acquire()
            with pytest.raises(ValueError):
                await ctl.acquire(request=ServingRequest(payload=None))
        asyncio.run(go())

    def test_envelope_deadline_fills_in(self):
        async def go():
            ctl = AdmissionController(max_pending=4, max_inflight=2)
            env = ServingRequest(payload=None, deadline=0.5)
            assert await ctl.acquire(request=env) is None
            ctl.release()
        asyncio.run(go())

    def test_classes_shed_in_order_on_live_controller(self):
        async def go():
            ctl = AdmissionController(
                max_pending=2, max_inflight=1,
                policies=[PriorityShedPolicy()])

            def env(cls):
                return ServingRequest(payload=None, deadline=1.0,
                                      request_class=cls)

            # Fill the slot, then half the queue.
            assert await ctl.acquire(request=env(AC)) is None
            queued = asyncio.ensure_future(ctl.acquire(request=env(LC)))
            await asyncio.sleep(0)
            assert ctl.pending == 1  # occupancy 0.5
            # Best-effort sheds at half-full; latency-critical still queues.
            assert await ctl.acquire(request=env(BE)) == "class_best_effort"
            queued2 = asyncio.ensure_future(ctl.acquire(request=env(LC)))
            await asyncio.sleep(0)
            assert ctl.pending == 2  # occupancy 1.0: queue full
            # Now even accuracy-critical sheds — but only now.
            assert await ctl.acquire(request=env(LC)) == \
                "class_latency_critical"
            assert await ctl.acquire(request=env(AC)) == \
                "class_accuracy_critical"
            reasons = ctl.stats().shed_reasons
            assert reasons == {"class_best_effort": 1,
                               "class_latency_critical": 1,
                               "class_accuracy_critical": 1}
            ctl.release()
            assert await queued is None
            ctl.release()
            assert await queued2 is None
            ctl.release()
        asyncio.run(go())


class TestMixedClassOverloadRun:
    """The acceptance run: 2x overload, accuracy-critical protected."""

    CLASSES = [AC, LC, BE]

    def mixed_loadgen(self, matrix):
        base = cf_request_factory(matrix)
        classes = self.CLASSES

        def factory(i, rng):
            return ServingRequest(payload=base(i, rng),
                                  request_class=classes[i % len(classes)])

        return LoadGenerator(factory, seed=29)

    def test_accuracy_critical_never_shed_under_overload(self,
                                                         small_ratings):
        # Service capacity: 2 slots / 100 ms stall = 20 rps; offered:
        # 40 rps (2x overload), one third per class — accuracy traffic
        # alone (13 rps) fits capacity.  Aggressive low-class
        # thresholds park the standing queue around 0.3 * 32 ~ 10
        # pending, so the accuracy-critical threshold (a truly full
        # queue, 32) stays ~22 slots away: even a multi-hundred-ms
        # scheduler stall bunching arrivals (this box has one core)
        # cannot reach it.  The slow stall keeps every timing margin
        # large relative to event-loop jitter.
        stall = AsyncStallAdapter(CFAdapter(), synopsis_stall=0.1,
                                  group_stall=0.0)
        svc = AccuracyTraderService(
            stall, split_ratings(small_ratings.matrix, 1),
            config=CF_CONFIG, i_max=0)
        loadgen = self.mixed_loadgen(small_ratings.matrix)
        n = 96
        load = loadgen.fixed(np.arange(n) / 40.0)  # 40 rps for 2.4 s
        admission = AdmissionController(
            max_pending=32, max_inflight=2,
            policies=[PriorityShedPolicy(
                thresholds={BE: 0.15, LC: 0.3})])
        with svc, AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(svc, deadline=10.0,
                                          backend=backend,
                                          admission=admission)
            stats = harness.run_open_loop(load)

        assert stats.offered == n
        assert stats.shed > 0, "the run must actually overload"
        # The invariant: best-effort absorbs the overload; the paper's
        # accuracy-critical traffic is never shed while best-effort is.
        assert stats.class_shed.get("best_effort", 0) > 0
        assert stats.class_shed.get("accuracy_critical", 0) == 0
        assert stats.class_served["accuracy_critical"] == n // 3
        # Shed reasons name the shed class.
        assert all(reason.startswith("class_")
                   for reason in stats.shed_reasons)
        # Per-class latency percentiles exist for every served class.
        breakdown = stats.class_breakdown()
        assert breakdown["accuracy_critical"]["served"] == n // 3
        assert np.isfinite(breakdown["accuracy_critical"]["p99_s"])
        # Served/shed accounting ties out with the run totals.
        assert sum(row["served"] for row in breakdown.values()) == \
            stats.n_requests
        assert sum(row["shed"] for row in breakdown.values()) == stats.shed
        # The queue part of each served request's latency is surfaced:
        # under overload, admitted requests really did wait.
        assert stats.queue_delays.shape == stats.request_latencies.shape
        assert np.all(np.isfinite(stats.queue_delays))
        assert np.all(stats.queue_delays >= 0.0)
        assert np.all(stats.queue_delays <= stats.request_latencies + 1e-9)
        assert stats.queue_delays.max() > 0.0
