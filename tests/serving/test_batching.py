"""Dispatch coalescing: batched submission must not change a single bit.

The whole point of :class:`~repro.serving.backends.BatchingBackend` is
that *how many* tasks travel per backend submission is orthogonal to
what each task computes: a coalesced batch must return bit-identical
answers, reports and state epochs to per-task dispatch, on every
execution backend, for both paper workloads.  Simulated clocks make the
traces deterministic, so equality is exact dataclass equality — not
approximate.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.clock import SimulatedClock
from repro.serving.aio import AsyncExecutionBackend
from repro.serving.backends import (
    BatchingBackend,
    PersistentProcessBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
)
from repro.serving.envelope import as_envelope

DEADLINE = 0.05
SPEED = 400.0   # work units / s: tight enough that the deadline bites
WINDOW = 0.25   # long enough that one threaded burst always coalesces
N_REQUESTS = 5


def sim_clocks(n):
    return [SimulatedClock(speed=SPEED) for _ in range(n)]


def cf_requests(small_ratings):
    from repro.core.adapters import CFRequest

    reqs = []
    for u in range(N_REQUESTS):
        ids, vals = small_ratings.matrix.user_ratings(u)
        targets = [t for t in range(8) if t not in set(ids.tolist())] or [0]
        reqs.append(CFRequest(active_items=ids, active_vals=vals,
                              target_items=targets))
    return reqs


def search_queries(small_corpus):
    from repro.core.adapters import SearchQuery

    return [SearchQuery(terms=small_corpus.partition.tokens_of(d)[:3], k=10)
            for d in range(N_REQUESTS)]


def serve_all(service, envelopes, backend):
    """One response per envelope; concurrent so submissions can coalesce."""
    with ThreadPoolExecutor(max_workers=len(envelopes)) as pool:
        futures = [pool.submit(service.serve, env,
                               clocks=sim_clocks(service.n_components),
                               backend=backend)
                   for env in envelopes]
        return [f.result() for f in futures]


@pytest.fixture(scope="module",
                params=["sequential", "thread", "process", "persistent",
                        "async"])
def inner_backend(request):
    backend = {
        "sequential": SequentialBackend,
        "thread": lambda: ThreadPoolBackend(max_workers=4),
        "process": lambda: ProcessPoolBackend(max_workers=2),
        "persistent": lambda: PersistentProcessBackend(max_workers=2),
        "async": AsyncExecutionBackend,
    }[request.param]()
    yield backend
    backend.close()


class TestBitIdentity:
    """Coalesced vs per-task dispatch on every backend, both workloads."""

    def check(self, service, envelopes, inner):
        base = [service.serve(env, clocks=sim_clocks(service.n_components),
                              backend=SequentialBackend())
                for env in envelopes]
        batching = BatchingBackend(inner, window=WINDOW, max_batch=64)
        try:
            batched = serve_all(service, envelopes, batching)
            stats = batching.batch_stats()
        finally:
            batching.close()
        # The burst really coalesced: fewer submissions than tasks.
        assert stats["tasks_coalesced"] == \
            len(envelopes) * service.n_components
        assert stats["batches_submitted"] < stats["tasks_coalesced"]
        for resp_b, resp_u in zip(batched, base):
            # Exact dataclass equality: ranked groups, depths, work
            # units, simulated elapsed times, epochs, request identity.
            assert resp_b.reports == resp_u.reports
            assert resp_b.state_epochs == resp_u.state_epochs
        return [r.answer for r in batched], [r.answer for r in base]

    def test_cf(self, cf_serving_service, small_ratings, inner_backend):
        envelopes = [as_envelope(r, DEADLINE)
                     for r in cf_requests(small_ratings)]
        batched, base = self.check(cf_serving_service, envelopes,
                                   inner_backend)
        for b, u in zip(batched, base):
            assert b.numer == u.numer
            assert b.denom == u.denom
            assert b.active_mean == u.active_mean

    def test_search(self, search_serving_service, small_corpus,
                    inner_backend):
        envelopes = [as_envelope(q, DEADLINE)
                     for q in search_queries(small_corpus)]
        batched, base = self.check(search_serving_service, envelopes,
                                   inner_backend)
        for b, u in zip(batched, base):
            assert [(h.doc_id, h.score) for h in b] == \
                [(h.doc_id, h.score) for h in u]


class TestReportSeparation:
    def test_requests_keep_their_own_reports(self, cf_serving_service,
                                             small_ratings):
        envelopes = [as_envelope(r, DEADLINE)
                     for r in cf_requests(small_ratings)]
        assert len({env.request_id for env in envelopes}) == len(envelopes)
        batching = BatchingBackend(SequentialBackend(), window=WINDOW,
                                   max_batch=64, close_inner=True)
        try:
            responses = serve_all(cf_serving_service, envelopes, batching)
        finally:
            batching.close()
        for env, resp in zip(envelopes, responses):
            assert [rep.request_id for rep in resp.reports] == \
                [env.request_id] * cf_serving_service.n_components


class TestEpochIsolation:
    def test_mixed_epochs_never_coalesce(self, small_ratings, cf_adapter):
        from repro.core.builder import SynopsisConfig
        from repro.core.service import AccuracyTraderService
        from repro.workloads.partitioning import split_ratings

        svc = AccuracyTraderService(
            cf_adapter, split_ratings(small_ratings.matrix, 2),
            config=SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7))
        reqs = cf_requests(small_ratings)[:2]
        with svc:
            old_tasks = svc.build_tasks(as_envelope(reqs[0], DEADLINE),
                                        clocks=sim_clocks(2))
            svc.change_points(0, svc.partitions[0], [0])
            svc.change_points(1, svc.partitions[1], [0])
            new_tasks = svc.build_tasks(as_envelope(reqs[1], DEADLINE),
                                        clocks=sim_clocks(2))
            assert [t.state_ref.epoch for t in old_tasks] != \
                [t.state_ref.epoch for t in new_tasks]
            batching = BatchingBackend(SequentialBackend(), window=WINDOW,
                                       max_batch=64, close_inner=True)
            try:
                futures = [batching.submit_task(t)
                           for t in old_tasks + new_tasks]
                outcomes = [f.result() for f in futures]
                stats = batching.batch_stats()
            finally:
                batching.close()
        # Four distinct (component, epoch) keys -> four single-task
        # batches: a batch may never observe two state epochs.
        assert stats["tasks_coalesced"] == 4
        assert stats["batches_submitted"] == 4
        assert [o.report.state_epoch for o in outcomes] == \
            [t.state_ref.epoch for t in old_tasks + new_tasks]


class TestMechanics:
    def test_max_batch_flushes_early(self, cf_serving_service,
                                     small_ratings):
        envelopes = [as_envelope(r, DEADLINE)
                     for r in cf_requests(small_ratings)]
        # max_batch=2: a 5-request burst per component must flush at
        # least ceil(5/2)=3 batches per component, within the window.
        batching = BatchingBackend(SequentialBackend(), window=30.0,
                                   max_batch=2, close_inner=True)
        try:
            responses = serve_all(cf_serving_service, envelopes, batching)
            stats = batching.batch_stats()
        finally:
            batching.close()
        assert len(responses) == len(envelopes)
        assert stats["tasks_coalesced"] == \
            len(envelopes) * cf_serving_service.n_components
        assert stats["batches_submitted"] >= \
            2 * ((N_REQUESTS + 1) // 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingBackend(SequentialBackend(), window=-0.1)
        with pytest.raises(ValueError):
            BatchingBackend(SequentialBackend(), max_batch=0)

    def test_closed_backend_rejects_submissions(self, cf_serving_service,
                                                cf_request):
        batching = BatchingBackend(SequentialBackend(), window=0.01,
                                   close_inner=True)
        batching.close()
        task = cf_serving_service.build_tasks(
            as_envelope(cf_request, DEADLINE), clocks=sim_clocks(2))[0]
        with pytest.raises(RuntimeError):
            batching.submit_task(task)
