"""Admission control: bounded queue, shed policies, harness integration."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving.admission import (
    AdmissionController,
    DeadlineAwareDrop,
    RejectOnFull,
)
from repro.serving.aio import (
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
)
from repro.serving.envelope import RequestClass, ServingRequest
from repro.serving.loadgen import LoadGenerator
from repro.workloads.partitioning import split_ratings

from tests.serving.test_harness import cf_request_factory

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)


class TestController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            DeadlineAwareDrop(max_wait_fraction=0.0)
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_admit_and_release(self):
        async def go():
            ctl = AdmissionController(max_pending=4, max_inflight=2)
            assert await ctl.acquire(deadline=1.0) is None
            assert await ctl.acquire(deadline=1.0) is None
            assert ctl.inflight == 2
            ctl.release()
            ctl.release()
            assert ctl.inflight == 0
            stats = ctl.stats()
            assert stats.offered == 2 and stats.admitted == 2
            assert stats.shed == 0 and stats.inflight_max == 2
        asyncio.run(go())

    def test_reject_on_full_sheds_arrivals(self):
        async def go():
            ctl = AdmissionController(max_pending=2, max_inflight=1,
                                      policies=[RejectOnFull()])
            assert await ctl.acquire(deadline=1.0) is None  # holds the slot
            waiters = [asyncio.ensure_future(ctl.acquire(deadline=1.0))
                       for _ in range(2)]
            await asyncio.sleep(0)  # let both enter the pending queue
            assert ctl.pending == 2
            # Queue full: the next arrival is shed immediately.
            assert await ctl.acquire(deadline=1.0) == "queue_full"
            ctl.release()
            assert await waiters[0] is None
            ctl.release()
            assert await waiters[1] is None
            ctl.release()
            stats = ctl.stats()
            assert stats.offered == 4 and stats.admitted == 3
            assert stats.shed == 1
            assert stats.shed_reasons == {"queue_full": 1}
            assert stats.queue_depth_max == 2
        asyncio.run(go())

    def test_zero_pending_limits_queueing_not_service(self):
        async def go():
            # max_pending=0 means "no queueing, concurrency limit only":
            # idle slots still serve; only a would-be waiter is shed.
            ctl = AdmissionController(max_pending=0, max_inflight=2,
                                      policies=[RejectOnFull()])
            assert await ctl.acquire(deadline=1.0) is None
            assert await ctl.acquire(deadline=1.0) is None
            assert await ctl.acquire(deadline=1.0) == "queue_full"
            ctl.release()
            assert await ctl.acquire(deadline=1.0) is None
            ctl.release()
            ctl.release()
        asyncio.run(go())

    def test_deadline_aware_drop_on_arrival(self):
        async def go():
            ctl = AdmissionController(
                max_pending=8, max_inflight=2,
                policies=[DeadlineAwareDrop(max_wait_fraction=0.5)])
            # Already waited past half its deadline: shed without queueing.
            assert await ctl.acquire(deadline=0.1,
                                     waited=0.06) == "deadline_expired"
            assert await ctl.acquire(deadline=0.1, waited=0.01) is None
            ctl.release()
            assert ctl.stats().shed_reasons == {"deadline_expired": 1}
        asyncio.run(go())

    def test_priority_dequeue_overtakes_best_effort(self):
        """An accuracy-critical arrival jumps the best-effort queue.

        Regression: the controller used to hand freed slots out in plain
        FIFO arrival order, so request classes only mattered for
        *shedding*, never for who ran next.
        """
        def req(cls):
            return ServingRequest(payload=None, deadline=1.0,
                                  request_class=cls)

        async def go():
            ctl = AdmissionController(max_pending=10, max_inflight=1)
            assert await ctl.acquire(deadline=1.0) is None  # occupy the slot
            order = []

            async def admit(name, cls):
                assert await ctl.acquire(request=req(cls)) is None
                order.append(name)
                ctl.release()

            tasks = []
            for name, cls in [("be1", RequestClass.BEST_EFFORT),
                              ("be2", RequestClass.BEST_EFFORT),
                              ("ac", RequestClass.ACCURACY_CRITICAL)]:
                tasks.append(asyncio.ensure_future(admit(name, cls)))
                await asyncio.sleep(0)  # pin arrival order in the queue
            ctl.release()  # free the slot: dequeue order takes over
            await asyncio.gather(*tasks)
            # Urgent class first, FIFO within a class.
            assert order == ["ac", "be1", "be2"]
            assert ctl.inflight == 0
        asyncio.run(go())

    def test_priority_dequeue_stable_within_class(self):
        async def go():
            ctl = AdmissionController(max_pending=16, max_inflight=1)
            assert await ctl.acquire(deadline=1.0) is None
            order = []

            async def admit(i):
                assert await ctl.acquire(
                    request=ServingRequest(payload=None, deadline=1.0)
                ) is None
                order.append(i)
                ctl.release()

            tasks = []
            for i in range(5):
                tasks.append(asyncio.ensure_future(admit(i)))
                await asyncio.sleep(0)
            ctl.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2, 3, 4]
        asyncio.run(go())

    def test_cancelled_waiter_does_not_leak_slot(self):
        async def go():
            ctl = AdmissionController(max_pending=8, max_inflight=1)
            assert await ctl.acquire(deadline=1.0) is None
            doomed = asyncio.ensure_future(ctl.acquire(deadline=1.0))
            live = asyncio.ensure_future(ctl.acquire(deadline=1.0))
            await asyncio.sleep(0)
            doomed.cancel()
            ctl.release()  # the freed slot must skip the cancelled waiter
            assert await live is None
            ctl.release()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert ctl.inflight == 0
            assert await ctl.acquire(deadline=1.0) is None
            ctl.release()
        asyncio.run(go())

    def test_deadline_aware_drop_at_dispatch(self):
        async def go():
            ctl = AdmissionController(
                max_pending=8, max_inflight=1,
                policies=[DeadlineAwareDrop(max_wait_fraction=1.0)])
            assert await ctl.acquire(deadline=10.0) is None
            # Second request queues behind a slow slot; by the time the
            # slot frees its 50 ms deadline is long gone.
            waiter = asyncio.ensure_future(ctl.acquire(deadline=0.05))
            await asyncio.sleep(0.1)
            ctl.release()
            assert await waiter == "deadline_expired"
            # The shed request released the slot it briefly acquired.
            assert ctl.inflight == 0
            assert await ctl.acquire(deadline=10.0) is None
            ctl.release()
        asyncio.run(go())


class TestHarnessWithAdmission:
    """Overload shedding end to end through the async harness."""

    @pytest.fixture()
    def stalled_service(self, cf_adapter, small_ratings):
        parts = split_ratings(small_ratings.matrix, 1)
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.05,
                                  group_stall=0.0)
        return AccuracyTraderService(stall, parts, config=CF_CONFIG,
                                     i_max=0)

    def test_burst_is_shed_to_capacity(self, stalled_service, small_ratings):
        # 30 simultaneous arrivals against 1 execution slot + 5 queue
        # places: exactly 6 requests are served, 24 shed on arrival.
        loadgen = LoadGenerator(cf_request_factory(small_ratings.matrix),
                                seed=5)
        load = loadgen.fixed(np.zeros(30))
        admission = AdmissionController(max_pending=5, max_inflight=1,
                                        policies=[RejectOnFull()])
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(stalled_service, deadline=10.0,
                                          backend=backend,
                                          admission=admission)
            stats = harness.run_open_loop(load)
        assert stats.offered == 30
        assert stats.n_requests == 6
        assert stats.shed == 24
        assert stats.shed_reasons == {"queue_full": 24}
        assert stats.shed_rate() == pytest.approx(24 / 30)
        assert stats.queue_depth_max == 5
        assert stats.inflight_max == 1
        # Shed requests keep None answers; served ones are real.
        assert sum(a is not None for a in stats.answers) == 6
        assert stats.request_latencies.size == 6
        stalled_service.close()

    def test_controller_reusable_across_runs(self, stalled_service,
                                             small_ratings):
        # Each run_open_loop spins a fresh event loop (asyncio.run); the
        # controller's semaphore must rebind, and the reported queue
        # depth / shed counts must be per-run, not lifetime.
        loadgen = LoadGenerator(cf_request_factory(small_ratings.matrix),
                                seed=5)
        admission = AdmissionController(max_pending=5, max_inflight=1,
                                        policies=[RejectOnFull()])
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(stalled_service, deadline=10.0,
                                          backend=backend,
                                          admission=admission)
            first = harness.run_open_loop(loadgen.fixed(np.zeros(30)))
            second = harness.run_open_loop(loadgen.fixed(np.zeros(3)))
        assert first.n_requests == 6 and first.shed == 24
        # Run 2 never fills the queue: its own peak is 2, its shed 0 —
        # not run 1's lifetime values.
        assert second.n_requests == 3
        assert second.shed == 0 and second.shed_reasons == {}
        assert second.queue_depth_max == 2
        stalled_service.close()

    def test_no_admission_serves_everything(self, stalled_service,
                                            small_ratings):
        loadgen = LoadGenerator(cf_request_factory(small_ratings.matrix),
                                seed=5)
        load = loadgen.fixed(np.zeros(20))
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(stalled_service, deadline=10.0,
                                          backend=backend)
            stats = harness.run_open_loop(load)
        assert stats.n_requests == 20 and stats.shed == 0
        assert stats.offered == 20
        assert all(a is not None for a in stats.answers)
        stalled_service.close()
