"""The typed request envelope and its serving contract.

Two layers of pinning:

- the envelope types themselves (monotonic ids, class coercion,
  priority defaults, immutability, deadline resolution);
- the serving guarantee: every ``Servable`` implementation answers
  **bit-identically** through the envelope path across all five
  execution backends, and reports carry the envelope's identity end to
  end (including across a process boundary).  The legacy positional
  ``process`` / ``aprocess`` shims finished their deprecation cycle
  and are pinned *absent*.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.serving.backends import (
    PersistentProcessBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
)
from repro.serving.envelope import (
    RequestClass,
    ServingRequest,
    ServingResponse,
    as_envelope,
    payload_of,
)
from repro.serving.router import ReplicaGroup, ShardedService
from repro.workloads.partitioning import split_ratings

DEADLINE = 0.05
SPEED = 400.0  # tight enough that the deadline bites (see test_backends)
CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)


def sim_clocks(n, speed=SPEED):
    return [SimulatedClock(speed=speed) for _ in range(n)]


def report_key(report):
    """Everything except per-call envelope identity (ids always differ)."""
    return (report.groups_ranked, report.groups_processed, report.work_units,
            report.synopsis_elapsed, report.total_elapsed, report.deadline,
            report.hit_deadline, report.hit_imax, report.exhausted,
            report.state_epoch)


class TestRequestClass:
    def test_coercion(self):
        assert RequestClass.coerce("best_effort") is RequestClass.BEST_EFFORT
        assert RequestClass.coerce("ACCURACY_CRITICAL") is \
            RequestClass.ACCURACY_CRITICAL
        assert RequestClass.coerce(RequestClass.LATENCY_CRITICAL) is \
            RequestClass.LATENCY_CRITICAL
        with pytest.raises(ValueError):
            RequestClass.coerce("bulk")
        with pytest.raises(ValueError):
            RequestClass.coerce(3)

    def test_shed_order_and_priority(self):
        # Best-effort sheds first; accuracy-critical is most urgent.
        ranks = [RequestClass.BEST_EFFORT, RequestClass.LATENCY_CRITICAL,
                 RequestClass.ACCURACY_CRITICAL]
        assert [c.shed_rank for c in ranks] == [0, 1, 2]
        assert RequestClass.ACCURACY_CRITICAL.default_priority < \
            RequestClass.LATENCY_CRITICAL.default_priority < \
            RequestClass.BEST_EFFORT.default_priority


class TestServingRequest:
    def test_defaults(self):
        env = ServingRequest(payload="req")
        assert env.request_class is RequestClass.LATENCY_CRITICAL
        assert env.priority == RequestClass.LATENCY_CRITICAL.default_priority
        assert env.deadline is None
        assert env.hedge is None
        assert env.arrival_time > 0.0

    def test_ids_monotonic(self):
        ids = [ServingRequest(payload=i).request_id for i in range(32)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_class_string_coerced(self):
        env = ServingRequest(payload=None, request_class="best_effort")
        assert env.request_class is RequestClass.BEST_EFFORT
        assert env.priority == RequestClass.BEST_EFFORT.default_priority

    def test_explicit_priority_wins(self):
        env = ServingRequest(payload=None, request_class="best_effort",
                             priority=0)
        assert env.priority == 0

    def test_frozen(self):
        env = ServingRequest(payload=None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            env.deadline = 1.0

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            ServingRequest(payload=None, deadline=-0.1)

    def test_resolved_and_with_deadline_keep_identity(self):
        env = ServingRequest(payload="p")
        filled = env.resolved(0.25)
        assert filled.deadline == 0.25
        assert filled.request_id == env.request_id
        assert filled.arrival_time == env.arrival_time
        # An already-set deadline is kept as-is (same object).
        assert filled.resolved(9.0) is filled
        override = filled.with_deadline(0.5)
        assert override.deadline == 0.5
        assert override.request_id == env.request_id

    def test_detached_strips_payload_only(self):
        env = ServingRequest(payload=object(), deadline=0.1,
                             request_class="accuracy_critical")
        meta = env.detached()
        assert meta.payload is None
        assert meta.request_id == env.request_id
        assert meta.request_class is RequestClass.ACCURACY_CRITICAL
        assert meta.deadline == 0.1

    def test_as_envelope(self):
        env = as_envelope("payload", 0.2)
        assert env.payload == "payload" and env.deadline == 0.2
        # An envelope passes through with identity intact; an explicit
        # deadline *wins* over the envelope's own (build_tasks
        # precedence: the call site's positional deadline is the more
        # specific instruction).
        explicit = ServingRequest(payload="p", deadline=0.7)
        assert as_envelope(explicit) is explicit
        assert as_envelope(explicit, 0.7) is explicit
        override = as_envelope(explicit, 0.2)
        assert override.deadline == 0.2
        assert override.request_id == explicit.request_id
        # An unset deadline is filled in.
        assert as_envelope(ServingRequest(payload="p"), 0.2).deadline == 0.2
        assert payload_of(explicit) == "p"
        assert payload_of("bare") == "bare"


class TestServingResponse:
    def test_accessors(self, cf_serving_service, cf_request):
        env = ServingRequest(payload=cf_request, deadline=DEADLINE)
        resp = cf_serving_service.serve(env, clocks=sim_clocks(2))
        assert isinstance(resp, ServingResponse)
        assert resp.request is env
        assert len(resp.reports) == 2
        assert resp.state_epochs == [r.state_epoch for r in resp.reports]
        assert all(e is not None for e in resp.state_epochs)
        assert resp.service_time > 0.0
        assert resp.queue_delay == 0.0  # bare serve: no queue in front
        assert resp.latency == resp.queue_delay + resp.service_time
        answer, reports = resp.as_tuple()
        assert answer is resp.answer and reports is resp.reports

    def test_reports_carry_envelope_identity(self, cf_serving_service,
                                             cf_request):
        env = ServingRequest(payload=cf_request, deadline=DEADLINE,
                             request_class="accuracy_critical")
        resp = cf_serving_service.serve(env, clocks=sim_clocks(2))
        for report in resp.reports:
            assert report.request_id == env.request_id
            assert report.request_class == "accuracy_critical"


# ---------------------------------------------------------------------------
# The serving guarantee: the envelope path is bit-identical on every
# backend (sequential is the reference).
# ---------------------------------------------------------------------------


BACKENDS = ["sequential", "thread", "process", "persistent", "async"]


@pytest.fixture(scope="module", params=BACKENDS)
def any_backend(request):
    if request.param == "sequential":
        backend = SequentialBackend()
    elif request.param == "thread":
        backend = ThreadPoolBackend(max_workers=4)
    elif request.param == "process":
        backend = ProcessPoolBackend(max_workers=2)
    elif request.param == "persistent":
        backend = PersistentProcessBackend(max_workers=2)
    else:
        from repro.serving.aio import AsyncExecutionBackend

        backend = AsyncExecutionBackend()
    yield backend
    backend.close()


def answers_equal(a, b) -> bool:
    return a.active_mean == b.active_mean and a.numer == b.numer and \
        a.denom == b.denom


class TestEnvelopeBackendIdentity:
    """The envelope path answers bit-identically on all five backends."""

    def test_single_service(self, cf_serving_service, cf_request,
                            any_backend):
        base = cf_serving_service.serve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(2))
        resp = cf_serving_service.serve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(2), backend=any_backend)
        assert answers_equal(resp.answer, base.answer)
        assert [report_key(r) for r in resp.reports] == \
            [report_key(r) for r in base.reports]

    def test_single_service_async(self, cf_serving_service, cf_request,
                                  any_backend):
        base = cf_serving_service.serve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(2))
        resp = asyncio.run(cf_serving_service.aserve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(2), backend=any_backend))
        assert answers_equal(resp.answer, base.answer)
        assert [report_key(r) for r in resp.reports] == \
            [report_key(r) for r in base.reports]

    def test_search_service(self, search_serving_service, search_query,
                            any_backend):
        base = search_serving_service.serve(
            ServingRequest(payload=search_query, deadline=DEADLINE),
            clocks=sim_clocks(2))
        resp = search_serving_service.serve(
            ServingRequest(payload=search_query, deadline=DEADLINE),
            clocks=sim_clocks(2), backend=any_backend)
        assert [(h.doc_id, h.score) for h in resp.answer] == \
            [(h.doc_id, h.score) for h in base.answer]
        assert [report_key(r) for r in resp.reports] == \
            [report_key(r) for r in base.reports]

    def test_positional_shims_removed(self, cf_serving_service):
        # The DeprecationWarning cycle is over: the shims must be gone,
        # not silently reintroduced.
        assert not hasattr(cf_serving_service, "process")
        assert not hasattr(cf_serving_service, "aprocess")

    def test_deadline_truncation_covered(self, cf_serving_service,
                                         cf_request):
        # Guard: the parity above must exercise the truncated-refinement
        # path, not just process-everything.
        resp = cf_serving_service.serve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(2))
        assert any(r.hit_deadline for r in resp.reports)


class TestRouterEnvelopePath:
    @pytest.fixture(scope="class")
    def cf_parts(self, small_ratings):
        return split_ratings(small_ratings.matrix, 4)

    @pytest.fixture(scope="class")
    def routed(self, cf_adapter, cf_parts):
        svc = ShardedService([
            ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                               config=CF_CONFIG),
            ReplicaGroup.build(cf_adapter, cf_parts[2:4], 1,
                               config=CF_CONFIG),
        ])
        yield svc
        svc.close()

    def test_sharded_aserve_matches_serve(self, routed, cf_request):
        base = routed.serve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(routed.n_components))
        resp = asyncio.run(routed.aserve(
            ServingRequest(payload=cf_request, deadline=DEADLINE),
            clocks=sim_clocks(routed.n_components)))
        assert answers_equal(resp.answer, base.answer)
        assert [report_key(r) for r in resp.reports] == \
            [report_key(r) for r in base.reports]

    def test_sharded_shims_removed(self, routed):
        assert not hasattr(routed, "process")
        assert not hasattr(routed, "aprocess")

    def test_replica_group_serve(self, cf_adapter, cf_parts, cf_request):
        with ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                                config=CF_CONFIG) as group:
            first = group.serve(
                ServingRequest(payload=cf_request, deadline=DEADLINE),
                clocks=sim_clocks(2))
            resp = group.serve(
                ServingRequest(payload=cf_request, deadline=DEADLINE),
                clocks=sim_clocks(2))
            # Round-robin advanced one replica between the calls, but the
            # replicas hold bit-identical state.
            assert answers_equal(resp.answer, first.answer)
            for report in resp.reports:
                assert report.request_id == resp.request.request_id

    def test_serve_requires_envelope_and_deadline(self, routed, cf_request):
        with pytest.raises(TypeError):
            routed.serve(cf_request)
        with pytest.raises(ValueError):
            routed.serve(ServingRequest(payload=cf_request))

    def test_exact_accepts_envelope(self, routed, cf_request):
        bare = routed.exact(cf_request)
        via_env = routed.exact(ServingRequest(payload=cf_request))
        assert answers_equal(bare, via_env)


class TestEnvelopeAcrossProcessBoundary:
    def test_identity_survives_pickling(self, cf_adapter, small_ratings,
                                        cf_request):
        svc = AccuracyTraderService(
            cf_adapter, split_ratings(small_ratings.matrix, 2),
            config=CF_CONFIG)
        env = ServingRequest(payload=cf_request, deadline=DEADLINE,
                             request_class="best_effort")
        with svc, ProcessPoolBackend(max_workers=2) as backend:
            resp = svc.serve(env, clocks=sim_clocks(2), backend=backend)
        for report in resp.reports:
            assert report.request_id == env.request_id
            assert report.request_class == "best_effort"
