"""Async serving tier: backend parity, cancellation, hedging, harness.

The acceptance contract pinned here:

- the async backend (both its sync ``run_tasks`` contract and the
  ``aprocess`` path) is bit-identical to ``SequentialBackend`` on both
  paper workloads (CF + search);
- per-task deadline cancellation interrupts a stalled refinement
  *mid-await* and still returns a valid best-so-far answer;
- async hedged routing is first-answer-wins with the losing copy really
  cancelled (its remaining refinements never run);
- the ``AsyncServingHarness`` is deterministic under a seeded trace and
  holds far more requests in flight than a thread pool has workers.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import WallClock, simulated_clock_factory
from repro.core.service import AccuracyTraderService
from repro.serving.aio import (
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
    is_async_adapter,
)
from repro.serving.backends import SequentialBackend, resolve_backend
from repro.serving.loadgen import LoadGenerator
from repro.serving.router import ReplicaGroup, ShardedService
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.partitioning import split_corpus, split_ratings

from tests.serving.test_harness import cf_request_factory
from tests.helpers import aprocess, process

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)
SEARCH_CONFIG = SynopsisConfig(n_iters=25, target_ratio=20.0, seed=7)


@pytest.fixture(scope="module")
def cf_parts(small_ratings):
    return split_ratings(small_ratings.matrix, 4)


@pytest.fixture(scope="module")
def cf_service(cf_adapter, cf_parts):
    return AccuracyTraderService(cf_adapter, cf_parts, config=CF_CONFIG)


@pytest.fixture(scope="module")
def cf_loadgen(small_ratings):
    return LoadGenerator(cf_request_factory(small_ratings.matrix), seed=31)


def sim_factory(speed=400.0):
    return simulated_clock_factory(speed)


def sim_clocks(n, speed=400.0):
    return [simulated_clock_factory(speed)(c) for c in range(n)]


class CountingStallAdapter(AsyncStallAdapter):
    """Async stall adapter counting refinement entries (for cancellation)."""

    def __init__(self, inner, **kwargs):
        super().__init__(inner, **kwargs)
        self.refines_started = 0

    async def arefine(self, partition, synopsis, group_id, request, state):
        self.refines_started += 1
        return await super().arefine(partition, synopsis, group_id,
                                     request, state)


class TestAsyncBackendParity:
    """Async execution == SequentialBackend, bit for bit."""

    def test_cf_sync_contract_bit_identical(self, cf_service, cf_loadgen):
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        base, base_reps = process(cf_service, request, 0.05,
                                             clocks=sim_clocks(4),
                                             backend=SequentialBackend())
        with AsyncExecutionBackend() as backend:
            ans, reps = process(cf_service, request, 0.05,
                                           clocks=sim_clocks(4),
                                           backend=backend)
        assert ans.numer == base.numer and ans.denom == base.denom
        assert [r.groups_processed for r in reps] == \
            [r.groups_processed for r in base_reps]
        assert [r.groups_ranked for r in reps] == \
            [r.groups_ranked for r in base_reps]

    def test_cf_aprocess_bit_identical(self, cf_service, cf_loadgen):
        for i in range(3):
            request = cf_loadgen.request_factory(i, np.random.default_rng(i))
            base, base_reps = process(cf_service, 
                request, 0.05, clocks=sim_clocks(4),
                backend=SequentialBackend())
            with AsyncExecutionBackend() as backend:
                ans, reps = asyncio.run(aprocess(cf_service, 
                    request, 0.05, clocks=sim_clocks(4), backend=backend))
            assert ans.numer == base.numer and ans.denom == base.denom
            assert [r.groups_processed for r in reps] == \
                [r.groups_processed for r in base_reps]

    def test_search_aprocess_bit_identical(self, small_corpus,
                                           search_adapter, search_query):
        parts = split_corpus(small_corpus.partition, 4)
        svc = AccuracyTraderService(search_adapter, parts,
                                    config=SEARCH_CONFIG,
                                    i_max_fraction=0.4)
        base, _ = process(svc, search_query, 0.05, clocks=sim_clocks(4),
                              backend=SequentialBackend())
        with AsyncExecutionBackend() as backend:
            ans, _ = asyncio.run(aprocess(svc, search_query, 0.05,
                                              clocks=sim_clocks(4),
                                              backend=backend))
        assert [(h.doc_id, h.score) for h in ans] == \
            [(h.doc_id, h.score) for h in base]

    def test_async_native_adapter_matches_plain(self, cf_adapter, cf_parts,
                                                cf_loadgen):
        # Stalls wait, never compute: the async-native path must return
        # the plain adapter's exact answers.
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.002,
                                  group_stall=0.001)
        assert is_async_adapter(stall) and not is_async_adapter(cf_adapter)
        plain = AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                      config=CF_CONFIG)
        stalled = AccuracyTraderService(stall, cf_parts[0:2],
                                        config=CF_CONFIG)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        base, base_reps = process(plain, request, 0.05, clocks=sim_clocks(2))
        with AsyncExecutionBackend() as backend:
            ans, reps = asyncio.run(aprocess(stalled, 
                request, 0.05, clocks=sim_clocks(2), backend=backend))
        assert ans.numer == base.numer and ans.denom == base.denom
        assert [r.groups_processed for r in reps] == \
            [r.groups_processed for r in base_reps]

    def test_resolve_and_lifecycle(self):
        backend = resolve_backend("async")
        assert isinstance(backend, AsyncExecutionBackend)
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(ValueError):
            resolve_backend("not-a-backend")
        with pytest.raises(ValueError):
            AsyncExecutionBackend(cancel_grace=0.0)


class TestDeadlineCancellation:
    """cancel_grace interrupts a stalled refinement mid-await."""

    def test_watchdog_cancels_mid_stall(self, cf_adapter, cf_parts,
                                        cf_loadgen):
        stall = CountingStallAdapter(cf_adapter, synopsis_stall=0.01,
                                     group_stall=0.5)
        svc = AccuracyTraderService(stall, cf_parts[0:1], config=CF_CONFIG)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        tasks = svc.build_tasks(request, 0.1, clocks=[WallClock()])

        with AsyncExecutionBackend(cancel_grace=1.0) as backend:
            t0 = time.monotonic()
            outcomes = asyncio.run(backend.arun_tasks(tasks))
            elapsed = time.monotonic() - t0
            assert backend.tasks_cancelled == 1
        [outcome] = outcomes
        # Without the watchdog the in-flight 0.5 s refinement stall would
        # run to completion; with it the task ends at the ~0.1 s budget.
        assert elapsed < 0.4
        assert outcome.report.cancelled and outcome.report.hit_deadline
        assert outcome.report.groups_processed == 0
        # Best-so-far, not dropped: stage 1 produced a valid answer.
        assert outcome.result is not None
        svc.close()

    def test_no_watchdog_checks_between_stalls(self, cf_adapter, cf_parts,
                                               cf_loadgen):
        # Same service, watchdog off: the deadline is only observed after
        # the in-flight stall finishes (sync-tier semantics).
        stall = CountingStallAdapter(cf_adapter, synopsis_stall=0.01,
                                     group_stall=0.2)
        svc = AccuracyTraderService(stall, cf_parts[0:1], config=CF_CONFIG)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        tasks = svc.build_tasks(request, 0.05, clocks=[WallClock()])
        with AsyncExecutionBackend() as backend:
            [outcome] = asyncio.run(backend.arun_tasks(tasks))
            assert backend.tasks_cancelled == 0
        assert outcome.report.groups_processed == 1
        assert outcome.report.hit_deadline and not outcome.report.cancelled
        svc.close()


class TestAsyncHedgedRouting:
    """Event-loop tied requests: first answer wins, loser truly cancelled."""

    def build_cluster(self, cf_adapter, cf_parts):
        straggler = CountingStallAdapter(cf_adapter, synopsis_stall=0.08,
                                         group_stall=0.08)
        fast = AsyncStallAdapter(cf_adapter, synopsis_stall=0.002,
                                 group_stall=0.002)
        group = ReplicaGroup([
            AccuracyTraderService(straggler, cf_parts[0:2], config=CF_CONFIG),
            AccuracyTraderService(fast, cf_parts[0:2], config=CF_CONFIG),
        ])
        svc = ShardedService(
            [group],
            hedge=ReissueStrategy(100.0, initial_expected_latency=0.02),
            hedge_budget=None)
        return svc, straggler, group

    def test_first_answer_wins_and_loser_cancelled(self, cf_adapter,
                                                   cf_parts, cf_loadgen):
        svc, straggler, group = self.build_cluster(cf_adapter, cf_parts)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        n_groups = sum(s.n_aggregated
                       for s in group.replicas[0].synopses)

        async def go():
            with AsyncExecutionBackend() as backend:
                return await aprocess(svc, request, 10.0, backend=backend)

        answer, reports = asyncio.run(go())
        assert svc.hedges_issued == 1 and svc.hedge_wins == 1
        assert answer is not None and len(reports) == 2
        # Real cancellation: the straggling primary was interrupted
        # mid-stall, so it never started all of its refinements.
        assert straggler.refines_started < n_groups
        svc.close()

    def test_hedged_answer_matches_unhedged(self, cf_adapter, cf_parts,
                                            cf_loadgen):
        svc, _, _ = self.build_cluster(cf_adapter, cf_parts)
        base_svc = AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                        config=CF_CONFIG)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        base = process(base_svc, request, 10.0)[0]

        async def go():
            with AsyncExecutionBackend() as backend:
                return await aprocess(svc, request, 10.0, backend=backend)

        answer, _ = asyncio.run(go())
        assert answer.numer == base.numer and answer.denom == base.denom
        svc.close()
        base_svc.close()

    def test_sharded_aprocess_bit_identical_unhedged(self, cf_adapter,
                                                     cf_parts, cf_loadgen):
        routed = ShardedService([
            ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                               config=CF_CONFIG),
            ReplicaGroup.build(cf_adapter, cf_parts[2:4], 2,
                               config=CF_CONFIG),
        ])
        base = AccuracyTraderService(cf_adapter, cf_parts, config=CF_CONFIG)
        request = cf_loadgen.request_factory(1, np.random.default_rng(1))
        expect, expect_reps = process(base, request, 0.05,
                                           clocks=sim_clocks(4))

        async def go():
            with AsyncExecutionBackend() as backend:
                return await aprocess(routed, request, 0.05,
                                             clocks=sim_clocks(4),
                                             backend=backend)

        ans, reps = asyncio.run(go())
        assert ans.numer == expect.numer and ans.denom == expect.denom
        assert [r.groups_processed for r in reps] == \
            [r.groups_processed for r in expect_reps]
        routed.close()
        base.close()


class TestAsyncHarness:
    def test_deterministic_under_seeded_trace(self, cf_service, cf_loadgen):
        load = cf_loadgen.poisson(rate=200.0, duration=0.1)
        assert load.n_requests > 0

        def run():
            with AsyncExecutionBackend() as backend:
                harness = AsyncServingHarness(
                    cf_service, deadline=0.05, backend=backend,
                    clock_factory=sim_factory())
                return harness.run_open_loop(load)

        a, b = run(), run()
        assert a.n_requests == b.n_requests == load.n_requests
        assert a.offered == load.n_requests
        for x, y in zip(a.answers, b.answers):
            assert x.numer == y.numer and x.denom == y.denom
        np.testing.assert_array_equal(a.sub_latencies, b.sub_latencies)

    def test_holds_many_requests_in_flight(self, cf_adapter, cf_parts,
                                           cf_loadgen):
        # 150 requests arriving at once, each stalling ~30 ms on its one
        # component: an event loop overlaps them all; a thread pool would
        # need 150 workers to do the same.
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.03,
                                  group_stall=0.0)
        svc = AccuracyTraderService(stall, cf_parts[0:1], config=CF_CONFIG,
                                    i_max=0)
        load = cf_loadgen.fixed(np.zeros(150))
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(svc, deadline=10.0,
                                          backend=backend)
            stats = harness.run_open_loop(load)
        assert stats.n_requests == 150
        assert stats.inflight_max >= 100
        # Overlapped stalls: total duration is a small multiple of one
        # stall, nowhere near the 4.5 s of serial sleeping.
        assert stats.duration < 1.5
        svc.close()

    def test_updates_schedule_applied(self, cf_adapter, cf_parts,
                                      cf_loadgen):
        svc = AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                    config=CF_CONFIG)
        load = cf_loadgen.fixed([0.0, 0.01])

        def touch(service):
            return service.n_components

        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(svc, deadline=0.05,
                                          backend=backend,
                                          clock_factory=sim_factory())
            stats = harness.run_open_loop(load, updates=[(0.0, touch)])
        assert stats.update_log == [(0.0, 2)]
        svc.close()


class TestAsyncClosedLoop:
    def test_serves_every_request_in_order_slots(self, cf_service,
                                                 cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=3, n_requests=12)
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(cf_service, deadline=0.05,
                                          backend=backend,
                                          clock_factory=sim_factory())
            stats = harness.run_closed_loop(load)
        assert stats.n_requests == 12
        assert all(a is not None for a in stats.answers)
        assert stats.inflight_max <= 3
        assert np.all(stats.request_latencies >= 0.0)
        assert stats.offered is None   # no admission layer in closed loop

    def test_closed_loop_populates_queue_delays(self, cf_service,
                                                cf_loadgen):
        # Dispatch overhead (client latency minus service time) lands in
        # queue_delays, one entry per request.
        load = cf_loadgen.closed_loop(n_clients=2, n_requests=8)
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(cf_service, deadline=0.05,
                                          backend=backend,
                                          clock_factory=sim_factory())
            stats = harness.run_closed_loop(load)
        assert stats.queue_delays.shape == (8,)
        assert np.all(stats.queue_delays >= 0.0)
        assert np.all(np.isfinite(stats.queue_delays))
        assert np.all(stats.queue_delays <= stats.request_latencies + 1e-9)

    def test_answers_bit_identical_to_sync_closed_loop(self, cf_service,
                                                       cf_loadgen):
        from repro.serving.harness import ServingHarness

        load = cf_loadgen.closed_loop(n_clients=2, n_requests=8)
        sync_stats = ServingHarness(
            cf_service, deadline=0.05,
            clock_factory=sim_factory()).run_closed_loop(load)
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(cf_service, deadline=0.05,
                                          backend=backend,
                                          clock_factory=sim_factory())
            stats = harness.run_closed_loop(load)
        for x, y in zip(stats.answers, sync_stats.answers):
            assert x.numer == y.numer and x.denom == y.denom

    def test_client_population_parks_not_blocks(self, cf_adapter, cf_parts,
                                                cf_loadgen):
        # 60 clients each stalling ~30 ms: coroutines overlap the think
        # and stall time, so the run is a small multiple of one stall.
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.03,
                                  group_stall=0.0)
        svc = AccuracyTraderService(stall, cf_parts[0:1], config=CF_CONFIG,
                                    i_max=0)
        load = cf_loadgen.closed_loop(n_clients=60, n_requests=60)
        with AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(svc, deadline=10.0,
                                          backend=backend)
            stats = harness.run_closed_loop(load)
        assert stats.n_requests == 60
        assert stats.inflight_max >= 30
        assert stats.duration < 1.0   # nowhere near 60 x 30 ms serial
        svc.close()
