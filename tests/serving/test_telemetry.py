"""Observability plane: tracing, metrics, and cross-process stitching.

The acceptance contract pinned here:

- head sampling is deterministic and exact at rates 0 and 1 (and obeys
  the ``floor(n * rate)`` law at fractional rates);
- the metrics registry's counters / gauges / histograms are int-exact
  where the legacy dicts were, and the registry-backed counter dicts
  (`hedge_counters`, admission stats, payload counters) keep their
  historical shapes;
- one request served through ``ShardedService`` -> ``ReplicaGroup`` ->
  ``RemoteServable`` yields a single stitched trace whose spans come
  from more than one OS process, with valid parent links throughout;
- hedged requests get sibling ``shard.primary`` / ``shard.hedge`` spans
  with exactly one winner;
- all-shed and empty runs still export well-formed traces, and the
  Chrome export is loadable ``trace_event`` JSON.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving.adapters import IOStallAdapter
from repro.serving.admission import AdmissionController, DeadlineAwareDrop
from repro.serving.aio import (AsyncExecutionBackend, AsyncServingHarness,
                               AsyncStallAdapter)
from repro.serving.backends import SequentialBackend, ThreadPoolBackend
from repro.serving.envelope import RequestClass, ServingRequest, as_envelope
from repro.serving.harness import ServingHarness
from repro.serving.loadgen import LoadGenerator
from repro.serving.router import ReplicaGroup, ShardedService
from repro.serving.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    attach_context,
    get_tracer,
    trace_context_of,
    use_tracer,
)
from repro.serving.transport import RemoteServable
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.partitioning import split_ratings

from tests.serving.test_envelope import DEADLINE, sim_clocks
from tests.serving.test_harness import cf_request_factory

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)


def fresh_envelope(i: int = 0,
                   request_class=RequestClass.LATENCY_CRITICAL):
    return ServingRequest(payload=("p", i), deadline=0.05,
                          request_class=request_class)


def assert_parent_links_valid(spans):
    """Every non-root span's parent is another span of the same trace."""
    ids = {s.span_id for s in spans}
    for s in spans:
        assert s.end >= s.start
        if s.parent_id is not None:
            assert s.parent_id in ids, (s.name, s.parent_id)


# ---------------------------------------------------------------------------
# sampling


class TestSampling:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(default_rate=1.0)
        for i in range(20):
            ctx = trace_context_of(tracer.trace(fresh_envelope(i)))
            assert ctx is not None and ctx.sampled

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(default_rate=0.0)
        for i in range(20):
            ctx = trace_context_of(tracer.trace(fresh_envelope(i)))
            assert ctx is not None and not ctx.sampled
        # Unsampled requests record no spans anywhere.
        ctx = trace_context_of(tracer.trace(fresh_envelope(99)))
        with tracer.span("request", ctx) as sp:
            sp.tag(anything=1)
        assert tracer.trace_ids() == []

    @pytest.mark.parametrize("rate", [0.1, 0.25, 0.5, 0.75])
    def test_fractional_rate_is_exact_floor_law(self, rate):
        tracer = Tracer(default_rate=rate)
        sampled = [trace_context_of(tracer.trace(fresh_envelope(i))).sampled
                   for i in range(100)]
        for n in range(1, 101):
            assert sum(sampled[:n]) == math.floor(n * rate)

    def test_per_class_rates(self):
        tracer = Tracer(sample_rates={"best_effort": 0.0}, default_rate=1.0)
        be = trace_context_of(tracer.trace(
            fresh_envelope(0, RequestClass.BEST_EFFORT)))
        lc = trace_context_of(tracer.trace(fresh_envelope(1)))
        assert not be.sampled
        assert lc.sampled

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            Tracer(default_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rates={"best_effort": -0.1})


# ---------------------------------------------------------------------------
# tracer mechanics


class TestTracerMechanics:
    def test_root_attached_in_place_and_idempotent(self):
        tracer = Tracer()
        env = fresh_envelope()
        out = tracer.trace(env)
        assert out is env                      # identity preserved
        ctx = trace_context_of(env)
        assert ctx.trace_id == env.request_id and ctx.span_id == 0
        again = tracer.trace(env)
        assert again is env
        assert trace_context_of(again) is ctx  # second root is a no-op

    def test_disabled_tracer_is_a_passthrough(self):
        tracer = Tracer(enabled=False)
        env = fresh_envelope()
        assert tracer.trace(env) is env
        assert trace_context_of(env) is None
        with tracer.span("x", None) as sp:
            assert sp.ctx is None
        assert tracer.trace_ids() == []

    def test_span_nesting_links_parents(self):
        tracer = Tracer()
        env = tracer.trace(fresh_envelope())
        ctx = trace_context_of(env)
        with tracer.span("outer", ctx) as outer:
            assert outer.ctx is not ctx        # child context minted
            with tracer.span("inner", outer.ctx) as inner:
                inner.tag(depth=2)
        spans = {s.name: s for s in tracer.spans_of(ctx.trace_id)}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].tags["depth"] == 2
        assert_parent_links_valid(list(spans.values()))

    def test_attach_context_copies_preserve_payload(self):
        tracer = Tracer()
        env = tracer.trace(fresh_envelope())
        ctx = trace_context_of(env)
        with tracer.span("outer", ctx) as sp:
            child = attach_context(env, sp.ctx)
        assert child.payload == env.payload
        assert child.request_id == env.request_id
        assert trace_context_of(child) is sp.ctx

    def test_record_posthoc_span(self):
        tracer = Tracer()
        env = tracer.trace(fresh_envelope())
        ctx = trace_context_of(env)
        tracer.record("shard.hedge", ctx, 1.0, 2.5, winner=True)
        (span,) = tracer.spans_of(ctx.trace_id)
        assert span.name == "shard.hedge"
        assert span.start == 1.0 and span.end == 2.5
        assert span.duration == 1.5
        assert span.tags == {"winner": True}

    def test_error_spans_tagged_not_swallowed(self):
        tracer = Tracer()
        env = tracer.trace(fresh_envelope())
        ctx = trace_context_of(env)
        with pytest.raises(RuntimeError):
            with tracer.span("boom", ctx):
                raise RuntimeError("kernel failed")
        (span,) = tracer.spans_of(ctx.trace_id)
        assert span.tags["error"] == "RuntimeError"

    def test_ingest_is_idempotent(self):
        tracer = Tracer()
        foreign = [Span(trace_id=7, span_id=1, parent_id=None, name="w",
                        start=0.0, end=1.0),
                   Span(trace_id=7, span_id=2, parent_id=1, name="k",
                        start=0.2, end=0.8)]
        assert tracer.ingest(foreign) == 2
        assert tracer.ingest(foreign) == 0
        assert len(tracer.spans_of(7)) == 2

    def test_max_traces_evicts_oldest(self):
        tracer = Tracer(max_traces=2)
        envs = [tracer.trace(fresh_envelope(i)) for i in range(3)]
        for env in envs:
            ctx = trace_context_of(env)
            with tracer.span("request", ctx):
                pass
        assert len(tracer.trace_ids()) == 2
        assert tracer.traces_evicted == 1
        assert envs[0].request_id not in tracer.trace_ids()


# ---------------------------------------------------------------------------
# metrics registry


class TestMetricsPrimitives:
    def test_counter_is_int_exact(self):
        c = Counter("n")
        c.inc()
        c.inc(41)
        assert c.value == 42 and isinstance(c.value, int)
        with pytest.raises(ValueError):
            c.inc(-1)
        c.reset()
        assert c.value == 0

    def test_gauge_tracks_high_watermark(self):
        g = Gauge("depth")
        g.inc(3)
        g.dec()
        g.inc()
        assert g.value == 3 and g.max == 3
        g.dec(3)
        g.reset_max()
        assert g.max == g.value == 0
        g.set(5)
        assert g.max == 5

    def test_histogram_buckets_and_percentiles(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(5.605)
        snap = h.snapshot()
        assert sum(snap["counts"]) == 5
        assert h.percentile(0.0) <= h.percentile(0.5) <= h.percentile(1.0)

    def test_registry_timer_uses_injected_clock(self):
        ticks = iter([10.0, 10.25])
        reg = MetricsRegistry(clock=lambda: next(ticks))
        with reg.timer("op"):
            pass
        h = reg.histogram("op")
        assert h.count == 1
        assert h.sum == pytest.approx(0.25)

    def test_registry_interns_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("shed", reason="queue_full") is \
            reg.counter("shed", reason="queue_full")
        assert reg.counter("shed", reason="queue_full") is not \
            reg.counter("shed", reason="deadline_expired")
        reg.counter("shed", reason="queue_full").inc(3)
        named = reg.counters_named("shed")
        assert sum(named.values()) == 3

    def test_registry_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == {"value": 7, "max": 7}
        reg.reset()
        assert reg.counter("a").value == 0


class TestRegistryBackedLegacyCounters:
    """The historical counter dicts read through the registry unchanged."""

    def test_hedge_counters_shape(self, cf_adapter, small_ratings):
        parts = split_ratings(small_ratings.matrix, 2)
        svc = ShardedService([
            ReplicaGroup([AccuracyTraderService(cf_adapter, [part],
                                                config=CF_CONFIG)])
            for part in parts])
        env = as_envelope(cf_request_factory(small_ratings.matrix)(
            0, np.random.default_rng(0)), DEADLINE)
        svc.serve(env, clocks=sim_clocks(2))
        counters = svc.hedge_counters()
        assert counters == {"shard_calls": 2, "hedges_issued": 0,
                            "hedge_wins": 0}
        assert svc.shard_calls == svc.metrics.counter("shard_calls").value

    def test_admission_stats_shape(self):
        ctl = AdmissionController(max_pending=4, max_inflight=2)
        stats = ctl.stats()
        assert stats.offered == stats.admitted == stats.shed == 0
        assert stats.shed_reasons == {}
        assert ctl.metrics.counter("offered").value == 0


# ---------------------------------------------------------------------------
# end-to-end stitching (in process)


@pytest.fixture(scope="module")
def cf_parts(small_ratings):
    return split_ratings(small_ratings.matrix, 2)


@pytest.fixture(scope="module")
def cf_cluster(cf_adapter, cf_parts):
    return ShardedService([
        ReplicaGroup([AccuracyTraderService(cf_adapter, [part],
                                            config=CF_CONFIG)])
        for part in cf_parts])


@pytest.fixture(scope="module")
def cf_loadgen(small_ratings):
    return LoadGenerator(cf_request_factory(small_ratings.matrix), seed=29)


class TestInProcessStitching:
    def test_one_request_yields_one_stitched_trace(self, cf_cluster,
                                                   cf_loadgen):
        tracer = Tracer()
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        with use_tracer(tracer):
            resp = cf_cluster.serve(as_envelope(request, DEADLINE),
                                    clocks=sim_clocks(2))
        assert resp.answer is not None
        (trace_id,) = tracer.trace_ids()
        assert trace_id == resp.request.request_id
        spans = tracer.spans_of(trace_id)
        names = {s.name for s in spans}
        assert "router.serve" in names
        assert "kernel" in names       # worker execution stitched in
        assert "state.fetch" in names
        assert_parent_links_valid(spans)

    def test_harness_roots_the_request_span(self, cf_cluster, cf_loadgen):
        tracer = Tracer()
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=3)
        with use_tracer(tracer):
            harness = ServingHarness(cf_cluster, deadline=DEADLINE)
            stats = harness.run_closed_loop(load)
        assert stats.n_requests == 3
        assert len(tracer.trace_ids()) == 3
        for tid in tracer.trace_ids():
            spans = tracer.spans_of(tid)
            roots = [s for s in spans if s.parent_id is None]
            assert [r.name for r in roots] == ["request"]
            assert_parent_links_valid(spans)

    def test_closed_loop_populates_queue_delays(self, cf_cluster,
                                                cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=2, n_requests=6)
        harness = ServingHarness(cf_cluster, deadline=DEADLINE)
        stats = harness.run_closed_loop(load)
        assert stats.queue_delays.shape == (6,)
        assert np.all(stats.queue_delays >= 0.0)
        assert np.all(np.isfinite(stats.queue_delays))


class TestHedgeSiblingSpans:
    def test_hedge_copies_get_sibling_spans_with_one_winner(
            self, cf_adapter, cf_parts, cf_loadgen):
        stall = IOStallAdapter(cf_adapter, synopsis_stall=0.03,
                               group_stall=0.03)
        shard0 = ReplicaGroup([
            AccuracyTraderService(stall, [cf_parts[0]], config=CF_CONFIG,
                                  i_max=3),
            AccuracyTraderService(cf_adapter, [cf_parts[0]],
                                  config=CF_CONFIG, i_max=3)])
        tracer = Tracer()
        with ThreadPoolBackend(max_workers=8) as backend:
            svc = ShardedService(
                [shard0], backend=backend,
                hedge=ReissueStrategy(100.0,
                                      initial_expected_latency=0.02),
                hedge_budget=None)
            with use_tracer(tracer):
                harness = ServingHarness(svc, deadline=10.0)
                harness.run_closed_loop(
                    cf_loadgen.closed_loop(n_clients=1, n_requests=4))
        assert svc.hedges_issued > 0
        hedged_traces = [
            tid for tid in tracer.trace_ids()
            if any(s.name == "shard.hedge" for s in tracer.spans_of(tid))]
        assert hedged_traces
        for tid in hedged_traces:
            spans = tracer.spans_of(tid)
            primaries = [s for s in spans if s.name == "shard.primary"]
            hedges = [s for s in spans if s.name == "shard.hedge"]
            for hedge in hedges:
                shard = hedge.tags["shard"]
                (primary,) = [s for s in primaries
                              if s.tags["shard"] == shard]
                # Siblings: same parent, exactly one winner.
                assert primary.parent_id == hedge.parent_id
                assert primary.tags["winner"] != hedge.tags["winner"]
                assert primary.tags["cancelled"] == \
                    (not primary.tags["winner"])
            assert_parent_links_valid(spans)


# ---------------------------------------------------------------------------
# cross-process stitching (RemoteServable)


class TestRemoteStitching:
    @pytest.fixture(scope="class")
    def remote_cluster(self, cf_adapter, cf_parts):
        remotes = [RemoteServable.spawn(AccuracyTraderService, cf_adapter,
                                        [part], config=CF_CONFIG)
                   for part in cf_parts]
        cluster = ShardedService([ReplicaGroup([r]) for r in remotes])
        yield cluster
        for remote in remotes:
            remote.close()

    def test_spans_stitch_across_process_boundaries(self, remote_cluster,
                                                    cf_loadgen):
        tracer = Tracer()
        request = cf_loadgen.request_factory(0, np.random.default_rng(1))
        with use_tracer(tracer):
            resp = remote_cluster.serve(as_envelope(request, DEADLINE),
                                        clocks=sim_clocks(2))
        assert resp.answer is not None
        (trace_id,) = tracer.trace_ids()
        spans = tracer.spans_of(trace_id)
        names = {s.name for s in spans}
        assert "router.serve" in names
        assert "wire.rpc" in names
        assert "kernel" in names
        # Worker spans really crossed a process boundary.
        pids = {s.pid for s in spans}
        assert len(pids) >= 2, names
        kernel_pids = {s.pid for s in spans if s.name == "kernel"}
        assert kernel_pids.isdisjoint(
            {s.pid for s in spans if s.name == "router.serve"})
        # Wire spans carry byte counts.
        for s in spans:
            if s.name == "wire.rpc":
                assert s.tags["bytes_sent"] > 0
                assert s.tags["bytes_received"] > 0


# ---------------------------------------------------------------------------
# degenerate traces + exports


class TestDegenerateTraces:
    def test_empty_tracer_exports_well_formed(self, tmp_path):
        tracer = Tracer()
        assert tracer.export_json() == {"traces": []}
        chrome = tracer.chrome_trace(str(tmp_path / "t.json"))
        assert chrome["traceEvents"] == []
        json.load(open(tmp_path / "t.json"))

    def test_all_shed_run_yields_well_formed_traces(self, cf_adapter,
                                                    small_ratings):
        parts = split_ratings(small_ratings.matrix, 1)
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.05,
                                  group_stall=0.0)
        svc = AccuracyTraderService(stall, parts, config=CF_CONFIG, i_max=0)
        loadgen = LoadGenerator(cf_request_factory(small_ratings.matrix),
                                seed=5)
        # Zero deadline + deadline-aware drop: every request sheds on
        # arrival; the trace still records a root span per request.
        admission = AdmissionController(
            max_pending=4, max_inflight=1,
            policies=[DeadlineAwareDrop(max_wait_fraction=1.0)])
        tracer = Tracer()
        with use_tracer(tracer), AsyncExecutionBackend() as backend:
            harness = AsyncServingHarness(svc, deadline=0.0,
                                          backend=backend,
                                          admission=admission)
            stats = harness.run_open_loop(loadgen.fixed(np.zeros(5)))
        svc.close()
        assert stats.n_requests == 0 and stats.shed == 5
        assert len(tracer.trace_ids()) == 5
        for tid in tracer.trace_ids():
            spans = tracer.spans_of(tid)
            assert spans, "shed request must still trace"
            (root,) = [s for s in spans if s.parent_id is None]
            assert root.name == "request"
            assert root.tags["outcome"].startswith("shed:")
            assert_parent_links_valid(spans)
        # Exports stay loadable.
        data = tracer.export_json()
        assert len(data["traces"]) == 5
        json.dumps(tracer.chrome_trace())

    def test_chrome_trace_structure(self, cf_cluster, cf_loadgen,
                                    tmp_path):
        tracer = Tracer()
        request = cf_loadgen.request_factory(2, np.random.default_rng(2))
        with use_tracer(tracer):
            cf_cluster.serve(as_envelope(request, DEADLINE),
                             clocks=sim_clocks(2))
        path = tmp_path / "chrome.json"
        tracer.chrome_trace(str(path))
        data = json.load(open(path))
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert complete and meta
        for e in complete:
            assert isinstance(e["ts"], float) and e["dur"] >= 0.0
            assert {"pid", "tid", "name", "args"} <= e.keys()
            assert "trace_id" in e["args"]
        assert {e["name"] for e in meta} == {"process_name"}

    def test_global_tracer_swap_is_scoped(self):
        original = get_tracer()
        inner = Tracer()
        with use_tracer(inner):
            assert get_tracer() is inner
        assert get_tracer() is original
