"""Router tier: sharded routing, replica groups, and live hedged re-issue.

The acceptance contract pinned here:

- a ``ShardedService`` (2 shards x 2 replicas) is driven by the
  ``ServingHarness`` through the exact same API as a single
  ``AccuracyTraderService``;
- routed answers are bit-identical to the unsharded service over the
  same partitions, on both paper workloads (CF + search);
- with an injected straggler replica (``IOStallAdapter``), hedged
  routing reduces p99 versus unhedged routing of the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock, simulated_clock_factory
from repro.core.servable import Servable
from repro.core.service import AccuracyTraderService
from repro.serving.adapters import IOStallAdapter
from repro.serving.backends import SequentialBackend, ThreadPoolBackend
from repro.serving.harness import ServingHarness
from repro.serving.loadgen import LoadGenerator
from repro.serving.router import ReplicaGroup, ShardedService
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.partitioning import split_corpus, split_ratings

from tests.serving.test_harness import cf_request_factory
from tests.helpers import aprocess, process

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=15.0, seed=7)
SEARCH_CONFIG = SynopsisConfig(n_iters=25, target_ratio=20.0, seed=7)


@pytest.fixture(scope="module")
def cf_parts(small_ratings):
    return split_ratings(small_ratings.matrix, 4)


@pytest.fixture(scope="module")
def cf_unsharded(cf_adapter, cf_parts):
    return AccuracyTraderService(cf_adapter, cf_parts, config=CF_CONFIG)


@pytest.fixture(scope="module")
def cf_routed(cf_adapter, cf_parts):
    """2 shards x 2 replicas over the same four partitions."""
    return ShardedService([
        ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2, config=CF_CONFIG),
        ReplicaGroup.build(cf_adapter, cf_parts[2:4], 2, config=CF_CONFIG),
    ])


@pytest.fixture(scope="module")
def cf_loadgen(small_ratings):
    return LoadGenerator(cf_request_factory(small_ratings.matrix), seed=29)


def sim_clocks(n, speed=400.0):
    return [SimulatedClock(speed=speed) for _ in range(n)]


class TestServableProtocol:
    def test_implementations_satisfy_protocol(self, cf_unsharded, cf_routed):
        assert isinstance(cf_unsharded, Servable)
        assert isinstance(cf_routed, Servable)
        for shard in cf_routed.shards:
            assert isinstance(shard, Servable)

    def test_component_accounting(self, cf_routed):
        assert cf_routed.n_shards == 2
        assert cf_routed.n_components == 4
        assert all(g.n_replicas == 2 for g in cf_routed.shards)


class TestBitIdenticalRouting:
    """Routed == unsharded, bit for bit, on both workloads."""

    def test_cf_answers_bit_identical(self, cf_unsharded, cf_routed,
                                      cf_loadgen):
        for i in range(4):
            request = cf_loadgen.request_factory(
                i, np.random.default_rng(i))
            base, base_reports = process(cf_unsharded, 
                request, 0.05, clocks=sim_clocks(4))
            routed, routed_reports = process(cf_routed, 
                request, 0.05, clocks=sim_clocks(4))
            assert routed.active_mean == base.active_mean
            assert routed.numer == base.numer
            assert routed.denom == base.denom
            assert [r.groups_ranked for r in routed_reports] == \
                [r.groups_ranked for r in base_reports]
            assert [r.groups_processed for r in routed_reports] == \
                [r.groups_processed for r in base_reports]

    def test_cf_exact_bit_identical(self, cf_unsharded, cf_routed,
                                    cf_loadgen):
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        base = cf_unsharded.exact(request)
        routed = cf_routed.exact(request)
        assert routed.numer == base.numer and routed.denom == base.denom

    def test_search_answers_bit_identical(self, small_corpus, search_adapter,
                                          search_query):
        parts = split_corpus(small_corpus.partition, 4)
        base_svc = AccuracyTraderService(search_adapter, parts,
                                         config=SEARCH_CONFIG,
                                         i_max_fraction=0.4)
        routed_svc = ShardedService([
            ReplicaGroup.build(search_adapter, parts[0:2], 2,
                               config=SEARCH_CONFIG, i_max_fraction=0.4),
            ReplicaGroup.build(search_adapter, parts[2:4], 2,
                               config=SEARCH_CONFIG, i_max_fraction=0.4),
        ])
        base, _ = process(base_svc, search_query, 0.05, clocks=sim_clocks(4))
        routed, _ = process(routed_svc, search_query, 0.05,
                                       clocks=sim_clocks(4))
        assert [(h.doc_id, h.score) for h in routed] == \
            [(h.doc_id, h.score) for h in base]
        base_exact = base_svc.exact(search_query)
        routed_exact = routed_svc.exact(search_query)
        assert [(h.doc_id, h.score) for h in routed_exact] == \
            [(h.doc_id, h.score) for h in base_exact]


class TestHarnessDrivesRouter:
    """The harness serves a routed cluster through the unchanged API."""

    def test_open_loop_stream(self, cf_routed, cf_loadgen):
        load = cf_loadgen.poisson(rate=150.0, duration=0.1)
        assert load.n_requests > 0
        harness = ServingHarness(
            cf_routed, deadline=0.05, backend=SequentialBackend(),
            clock_factory=simulated_clock_factory(400.0))
        stats = harness.run_open_loop(load)
        assert stats.n_requests == load.n_requests
        assert stats.n_components == 4
        assert stats.sub_latencies.size == load.n_requests * 4
        assert all(a is not None for a in stats.answers)
        assert stats.p50() <= stats.p95() <= stats.p99()

    def test_closed_loop_stream(self, cf_routed, cf_loadgen):
        load = cf_loadgen.closed_loop(n_clients=2, n_requests=6)
        with ThreadPoolBackend(max_workers=4) as backend:
            harness = ServingHarness(cf_routed, deadline=10.0,
                                     backend=backend)
            stats = harness.run_closed_loop(load)
        assert stats.n_requests == 6
        assert all(a is not None for a in stats.answers)
        assert stats.throughput() > 0


class TestReplicaGroup:
    def test_round_robin_rotation(self, cf_adapter, cf_parts):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 3,
                                   config=CF_CONFIG)
        picks = [group.next_replica() for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert group.sibling_of(2) == 0

    def test_replica_count_mismatch_rejected(self, cf_adapter, cf_parts):
        a = AccuracyTraderService(cf_adapter, cf_parts[0:2], config=CF_CONFIG)
        b = AccuracyTraderService(cf_adapter, cf_parts[0:1], config=CF_CONFIG)
        with pytest.raises(ValueError):
            ReplicaGroup([a, b])
        with pytest.raises(ValueError):
            ReplicaGroup([])

    def test_updates_fan_out_to_all_replicas(self, cf_adapter, cf_parts,
                                             cf_loadgen):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                                   config=CF_CONFIG)
        part = group.replicas[0].partitions[0]
        new = part.with_rows_appended(
            np.zeros(3, dtype=np.int64), np.array([0, 1, 2]),
            np.array([4.0, 3.5, 5.0]))
        reports = group.add_points(0, new, [part.n_users])
        assert len(reports) == 2
        # Every replica published the same new synopsis version, so the
        # group still answers identically no matter which replica is hit.
        counts = {r.synopses[0].n_aggregated for r in group.replicas}
        assert len(counts) == 1
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        answers = [process(r, request, 10.0)[0] for r in group.replicas]
        assert answers[0].numer == answers[1].numer
        assert answers[0].denom == answers[1].denom


class TestDeadlineBudgets:
    def test_budget_validation(self, cf_adapter, cf_parts):
        shard = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 1,
                                   config=CF_CONFIG)
        with pytest.raises(ValueError):
            ShardedService([shard], deadline_budgets=[1.0, 2.0])
        with pytest.raises(ValueError):
            ShardedService([shard], deadline_budgets=[0.0])

    def test_starved_shard_refines_less(self, cf_adapter, cf_parts,
                                        cf_loadgen):
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))

        def run(budgets):
            svc = ShardedService(
                [AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                       config=CF_CONFIG),
                 AccuracyTraderService(cf_adapter, cf_parts[2:4],
                                       config=CF_CONFIG)],
                deadline_budgets=budgets)
            _, reports = process(svc, request, 10.0,
                                     clocks=sim_clocks(4, speed=400.0))
            return [r.groups_processed for r in reports]

        fair = run([1.0, 1.0])
        skewed = run([1.0, 1e-6])
        assert skewed[0:2] == fair[0:2]          # shard 0 untouched
        assert sum(skewed[2:4]) < sum(fair[2:4])  # shard 1 starved


class TestHedgedRouting:
    """Live hedging mirrors the simulator's tied-request semantics."""

    # Hedge trigger: wide enough that a clean request (a few ms) never
    # spuriously hedges onto the straggler even on a loaded CI box, and
    # far below the straggler's guaranteed >= 4 x 30 ms of serial sleeps.
    THRESHOLD_S = 0.02

    @pytest.fixture()
    def straggler_cluster(self, cf_adapter, cf_parts):
        """2 shards x 2 replicas; shard 0's replica 0 stalls on I/O.

        Shard 0 caps refinement at i_max=3 so a losing stall copy (which
        runs to completion, no preemption) occupies its worker for a
        bounded ~0.12 s and cannot starve the pool across requests.
        """
        stall = IOStallAdapter(cf_adapter, synopsis_stall=0.03,
                               group_stall=0.03)
        shard0 = [AccuracyTraderService(stall, cf_parts[0:2],
                                        config=CF_CONFIG, i_max=3),
                  AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                        config=CF_CONFIG, i_max=3)]
        shard1 = [AccuracyTraderService(cf_adapter, cf_parts[2:4],
                                        config=CF_CONFIG),
                  AccuracyTraderService(cf_adapter, cf_parts[2:4],
                                        config=CF_CONFIG)]
        return shard0, shard1

    @staticmethod
    def serve(shard0, shard1, loadgen, hedge):
        # Fresh groups per run: independent round-robin counters, so both
        # runs hit the straggler replica on the same request indices.
        # Losing stall copies run to completion (no preemption), so the
        # pool must be wide enough that discarded sleepers cannot starve
        # later hedge copies of workers.
        load = loadgen.closed_loop(n_clients=1, n_requests=8)
        with ThreadPoolBackend(max_workers=16) as backend:
            # hedge_budget=None: these tests need every straggler hedged
            # regardless of the realized rate (the cap has its own tests).
            svc = ShardedService(
                [ReplicaGroup(shard0), ReplicaGroup(shard1)],
                backend=backend, hedge=hedge, hedge_budget=None)
            harness = ServingHarness(svc, deadline=10.0)
            stats = harness.run_closed_loop(load)
        return svc, stats

    def test_hedged_routing_beats_unhedged_p99(self, straggler_cluster,
                                               cf_loadgen):
        shard0, shard1 = straggler_cluster
        unhedged_svc, unhedged = self.serve(shard0, shard1, cf_loadgen,
                                            hedge=None)
        hedged_svc, hedged = self.serve(
            shard0, shard1, cf_loadgen,
            hedge=ReissueStrategy(
                100.0, initial_expected_latency=self.THRESHOLD_S))

        assert unhedged_svc.hedges_issued == 0
        assert hedged_svc.hedges_issued > 0
        assert hedged_svc.hedge_wins > 0
        # The straggler replica pays 4 serial 30 ms sleeps per request
        # (synopsis + 3 group fetches), so unhedged p99 is bounded below
        # by 0.12 s of guaranteed sleep; hedged requests are rescued by
        # the clean sibling shortly after the 20 ms threshold.
        assert unhedged.p99() >= 0.1
        assert hedged.p99() < 0.5 * unhedged.p99()
        # Both routes produce real merged answers for every request.
        assert all(a is not None for a in hedged.answers)
        assert all(a is not None for a in unhedged.answers)

    def test_hedged_answers_match_unhedged(self, straggler_cluster,
                                           cf_loadgen):
        # Generous deadline: every replica refines fully, so first-answer-
        # wins cannot change the merged result.
        shard0, shard1 = straggler_cluster
        _, unhedged = self.serve(shard0, shard1, cf_loadgen, hedge=None)
        _, hedged = self.serve(
            shard0, shard1, cf_loadgen,
            hedge=ReissueStrategy(
                100.0, initial_expected_latency=self.THRESHOLD_S))
        for a, b in zip(unhedged.answers, hedged.answers):
            assert a.numer == b.numer and a.denom == b.denom

    def test_sequential_backend_never_hedges(self, cf_adapter, cf_parts,
                                             cf_loadgen):
        # An inline backend completes at submit time: hedging cannot
        # trigger, and the router must still answer correctly.
        svc = ShardedService(
            [ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                                config=CF_CONFIG)],
            backend=SequentialBackend(),
            hedge=ReissueStrategy(100.0, initial_expected_latency=0.0001),
            hedge_budget=None)
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        answer, reports = process(svc, request, 10.0)
        assert answer is not None and len(reports) == 2
        assert svc.hedges_issued == 0


class TestHedgeBudget:
    """Dean & Barroso's ~5% cap: re-issues bounded by the call volume."""

    def test_default_budget_suppresses_hedges_at_small_volume(
            self, cf_adapter, cf_parts, cf_loadgen):
        # 8 requests x 2 shards = 16 shard calls: the default 5% budget
        # admits a hedge only once 20 calls have been issued, so none
        # fire — a systemic slowdown cannot double cluster load.
        straggler = IOStallAdapter(cf_adapter, synopsis_stall=0.03,
                                   group_stall=0.03)
        shard0 = ReplicaGroup([
            AccuracyTraderService(straggler, cf_parts[0:2],
                                  config=CF_CONFIG, i_max=3),
            AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                  config=CF_CONFIG, i_max=3)])
        shard1 = ReplicaGroup.build(cf_adapter, cf_parts[2:4], 2,
                                    config=CF_CONFIG)
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=8)
        with ThreadPoolBackend(max_workers=16) as backend:
            svc = ShardedService(
                [shard0, shard1], backend=backend,
                hedge=ReissueStrategy(100.0,
                                      initial_expected_latency=0.02))
            stats = ServingHarness(svc, deadline=10.0).run_closed_loop(load)
        assert svc.hedges_issued == 0
        assert stats.shard_calls == 16 and stats.hedges_issued == 0
        assert all(a is not None for a in stats.answers)

    def test_budget_bounds_realized_hedge_rate(self, cf_adapter, cf_parts,
                                               cf_loadgen):
        budget = 0.25
        straggler = IOStallAdapter(cf_adapter, synopsis_stall=0.03,
                                   group_stall=0.03)
        shard0 = ReplicaGroup([
            AccuracyTraderService(straggler, cf_parts[0:2],
                                  config=CF_CONFIG, i_max=3),
            AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                  config=CF_CONFIG, i_max=3)])
        shard1 = ReplicaGroup.build(cf_adapter, cf_parts[2:4], 2,
                                    config=CF_CONFIG)
        load = cf_loadgen.closed_loop(n_clients=1, n_requests=8)
        with ThreadPoolBackend(max_workers=16) as backend:
            svc = ShardedService(
                [shard0, shard1], backend=backend,
                hedge=ReissueStrategy(100.0,
                                      initial_expected_latency=0.02),
                hedge_budget=budget)
            stats = ServingHarness(svc, deadline=10.0).run_closed_loop(load)
        # The straggler shard would hedge on every one of its 4 hits
        # uncapped; the budget bounds the realized rate at every instant.
        assert svc.hedges_issued > 0
        assert svc.hedge_rate <= budget
        assert stats.hedge_rate() <= budget
        assert stats.hedges_issued == svc.hedges_issued

    def test_budget_validation(self, cf_adapter, cf_parts):
        shard = AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                      config=CF_CONFIG)
        with pytest.raises(ValueError):
            ShardedService([shard], hedge_budget=0.0)
        with pytest.raises(ValueError):
            ShardedService([shard], hedge_budget=1.5)


class TestHedgePlacement:
    def test_ring_is_default(self, cf_adapter, cf_parts):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 3,
                                   config=CF_CONFIG)
        assert group.hedge_sibling(0) == group.sibling_of(0) == 1
        assert group.hedge_sibling(2) == 0

    def test_p2c_prefers_observed_faster_replica(self, cf_adapter,
                                                 cf_parts):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 3,
                                   hedge_placement="p2c", config=CF_CONFIG)
        # Replica 1 is slow, replica 2 fast; with only two candidates
        # besides the primary, p2c always compares exactly those two.
        for _ in range(5):
            group.observe_latency(1, 0.5)
            group.observe_latency(2, 0.01)
        assert all(group.hedge_sibling(0) == 2 for _ in range(8))
        # EWMA adapts: replica 1 becomes fast, 2 degrades.
        for _ in range(30):
            group.observe_latency(1, 0.001)
            group.observe_latency(2, 0.8)
        assert all(group.hedge_sibling(0) == 1 for _ in range(8))

    def test_p2c_explores_unobserved_replicas_first(self, cf_adapter,
                                                    cf_parts):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 3,
                                   hedge_placement="p2c", config=CF_CONFIG)
        group.observe_latency(1, 0.001)  # replica 2 never observed
        assert group.hedge_sibling(0) == 2

    def test_two_replicas_collapse_to_ring(self, cf_adapter, cf_parts):
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                                   hedge_placement="p2c", config=CF_CONFIG)
        group.observe_latency(1, 10.0)
        assert group.hedge_sibling(0) == 1  # only one candidate exists

    def test_placement_validation(self, cf_adapter, cf_parts):
        with pytest.raises(ValueError):
            ReplicaGroup.build(cf_adapter, cf_parts[0:2], 2,
                               hedge_placement="nope", config=CF_CONFIG)
        group = ReplicaGroup.build(cf_adapter, cf_parts[0:2], 1,
                                   config=CF_CONFIG)
        with pytest.raises(ValueError):
            group.hedge_sibling(0)


class TestRoutedUpdates:
    """Global record ids route through the component map."""

    @pytest.fixture()
    def routed_cluster(self, cf_adapter, small_ratings):
        from repro.workloads.partitioning import make_shard_map, \
            shard_ratings

        cmap = make_shard_map(small_ratings.matrix.n_users, 4)
        parts = shard_ratings(small_ratings.matrix, cmap)
        svc = ShardedService([
            ReplicaGroup.build(cf_adapter, parts[0:2], 2, config=CF_CONFIG),
            ReplicaGroup.build(cf_adapter, parts[2:4], 2, config=CF_CONFIG),
        ], component_map=cmap)
        base = AccuracyTraderService(cf_adapter, parts, config=CF_CONFIG)
        return svc, base, parts

    def test_add_points_routes_new_global_id(self, routed_cluster,
                                             cf_loadgen):
        svc, base, parts = routed_cluster
        n_users = svc.component_map.n_records
        new_global = n_users  # round robin: lands on component n_users % 4
        component = new_global % 4
        old_part = parts[component]
        new_part = old_part.with_rows_appended(
            np.zeros(3, dtype=np.int64), np.array([0, 1, 2]),
            np.array([4.0, 3.5, 5.0]))

        reports = svc.add_points(new_part, [new_global])
        assert len(reports) == 2  # fanned out to both replicas
        assert svc.component_map.n_records == n_users + 1
        assert svc.locate_record(new_global) == \
            (component // 2, component % 2, old_part.n_users)

        # Mirror the update on the unsharded service: answers stay
        # bit-identical, so the router put the data where it belongs.
        base.add_points(component, new_part, [old_part.n_users])
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        routed_ans, _ = process(svc, request, 10.0)
        base_ans, _ = process(base, request, 10.0)
        assert routed_ans.numer == base_ans.numer
        assert routed_ans.denom == base_ans.denom

    def test_change_points_routes_existing_global_id(self, routed_cluster,
                                                     cf_loadgen):
        svc, base, parts = routed_cluster
        changed_global = 6  # component 2, its local record 1
        shard, local_component, local_id = svc.locate_record(changed_global)
        assert (shard, local_component, local_id) == (1, 0, 1)
        part = parts[2]
        reports = svc.change_points(part, [changed_global])
        assert len(reports) == 2
        base.change_points(2, part, [local_id])
        request = cf_loadgen.request_factory(1, np.random.default_rng(1))
        routed_ans, _ = process(svc, request, 10.0)
        base_ans, _ = process(base, request, 10.0)
        assert routed_ans.numer == base_ans.numer

    def test_routing_errors(self, routed_cluster, cf_adapter, cf_parts):
        svc, _, parts = routed_cluster
        n_before = svc.component_map.n_records
        with pytest.raises(ValueError):
            svc.add_points(parts[0], [])  # no ids
        with pytest.raises(ValueError):
            svc.add_points(parts[0], [0, 1])  # spans components 0 and 1
        with pytest.raises(ValueError):
            # New ids spanning components: rejected, and the map must
            # not keep the speculative growth of a failed update.
            svc.add_points(parts[0], [n_before, n_before + 1])
        assert svc.component_map.n_records == n_before
        with pytest.raises(IndexError):
            svc.change_points(parts[0], [10 ** 6])  # beyond the map
        unmapped = ShardedService([
            AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                  config=CF_CONFIG)])
        with pytest.raises(ValueError):
            unmapped.add_points(cf_parts[0], [0])
        # Explicit component addressing works without a map.
        part = cf_parts[0]
        new = part.with_rows_appended(
            np.zeros(1, dtype=np.int64), np.array([0]), np.array([4.0]))
        reports = unmapped.add_points(new, [part.n_users], component=0)
        assert len(reports) == 1

    def test_component_map_size_validated(self, cf_adapter, cf_parts):
        from repro.workloads.partitioning import make_shard_map

        with pytest.raises(ValueError):
            ShardedService(
                [AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                       config=CF_CONFIG)],
                component_map=make_shard_map(100, 3))


class TestRouterLifecycle:
    def test_router_owns_spec_backend(self, cf_adapter, cf_parts,
                                      cf_loadgen):
        svc = ShardedService(
            [AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                   config=CF_CONFIG)],
            backend="thread")
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        with svc:
            process(svc, request, 10.0)
            assert svc.backend._pool is not None
        assert svc.backend._pool is None

    def test_router_leaves_shared_backend_alone(self, cf_adapter, cf_parts,
                                                cf_loadgen):
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        with ThreadPoolBackend(max_workers=2) as backend:
            with ShardedService(
                    [AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                           config=CF_CONFIG)],
                    backend=backend) as svc:
                process(svc, request, 10.0)
            # Router exit must not have shut the caller's pool down.
            assert backend._pool is not None
            backend.run_tasks([])

    def test_shard_type_validated(self):
        with pytest.raises(TypeError):
            ShardedService(["not-a-shard"])
        with pytest.raises(ValueError):
            ShardedService([])


class TestHedgeClockOverride:
    """Regression: a per-call ``clocks=`` override reaches hedge copies.

    ``ShardedService`` used to build hedged re-issue copies from its
    ``clock_factory`` (wall clocks by default) even when the caller
    passed explicit ``clocks=`` — so a request served under simulated
    clocks silently hedged on wall time, and a winning hedge copy
    reported wall-time elapsed/deadline accounting instead of the
    simulated accounting every other copy used.  Now hedge copies get
    fresh ``fresh_like`` clones of the caller's clocks.
    """

    THRESHOLD_S = 0.01
    DEADLINE = 0.05
    SPEED = 400.0

    def hedged_cluster(self, cf_adapter, cf_parts, backend):
        stall = IOStallAdapter(cf_adapter, synopsis_stall=0.03,
                               group_stall=0.03)
        group = ReplicaGroup([
            AccuracyTraderService(stall, cf_parts[0:2], config=CF_CONFIG,
                                  i_max=3),
            AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                  config=CF_CONFIG, i_max=3),
        ])
        return ShardedService(
            [group], backend=backend, hedge_budget=None,
            hedge=ReissueStrategy(
                100.0, initial_expected_latency=self.THRESHOLD_S))

    def reference_reports(self, cf_adapter, cf_parts, request):
        reference = AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                          config=CF_CONFIG, i_max=3)
        with reference:
            _, reports = process(reference, 
                request, self.DEADLINE,
                clocks=sim_clocks(2, self.SPEED),
                backend=SequentialBackend())
        return reports

    @staticmethod
    def report_key(report):
        return (report.groups_ranked, report.groups_processed,
                report.work_units, report.synopsis_elapsed,
                report.total_elapsed, report.deadline, report.hit_deadline,
                report.hit_imax, report.exhausted)

    def test_winning_hedge_copy_uses_caller_clocks(self, cf_adapter,
                                                   cf_parts, cf_loadgen):
        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        expected = [self.report_key(r)
                    for r in self.reference_reports(cf_adapter, cf_parts,
                                                    request)]
        with ThreadPoolBackend(max_workers=8) as backend:
            svc = self.hedged_cluster(cf_adapter, cf_parts, backend)
            with svc:
                # The straggler primary guarantees the hedge fires and
                # the clean sibling wins; its reports must show the
                # caller's *simulated* accounting, not wall time.
                _, reports = process(svc, request, self.DEADLINE,
                                         clocks=sim_clocks(2, self.SPEED))
                assert svc.hedges_issued >= 1
                assert svc.hedge_wins >= 1
                assert [self.report_key(r) for r in reports] == expected

    def test_winning_hedge_copy_uses_caller_clocks_async(self, cf_adapter,
                                                         cf_parts,
                                                         cf_loadgen):
        import asyncio

        from repro.serving.aio import AsyncExecutionBackend, \
            AsyncStallAdapter

        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        expected = [self.report_key(r)
                    for r in self.reference_reports(cf_adapter, cf_parts,
                                                    request)]
        stall = AsyncStallAdapter(cf_adapter, synopsis_stall=0.03,
                                  group_stall=0.03)
        with AsyncExecutionBackend() as backend:
            group = ReplicaGroup([
                AccuracyTraderService(stall, cf_parts[0:2],
                                      config=CF_CONFIG, i_max=3),
                AccuracyTraderService(cf_adapter, cf_parts[0:2],
                                      config=CF_CONFIG, i_max=3),
            ])
            svc = ShardedService(
                [group], backend=backend, hedge_budget=None,
                hedge=ReissueStrategy(
                    100.0, initial_expected_latency=self.THRESHOLD_S))
            with svc:
                _, reports = asyncio.run(aprocess(svc, 
                    request, self.DEADLINE,
                    clocks=sim_clocks(2, self.SPEED)))
                assert svc.hedge_wins >= 1
                assert [self.report_key(r) for r in reports] == expected

    def test_request_hedge_false_opts_out(self, cf_adapter, cf_parts,
                                          cf_loadgen):
        from repro.serving.envelope import ServingRequest

        request = cf_loadgen.request_factory(0, np.random.default_rng(0))
        with ThreadPoolBackend(max_workers=8) as backend:
            svc = self.hedged_cluster(cf_adapter, cf_parts, backend)
            with svc:
                # Two opt-out requests cycle both replicas (the first
                # lands on the straggler primary, where hedging would
                # normally fire): no hedge may be issued.
                for _ in range(2):
                    resp = svc.serve(
                        ServingRequest(payload=request, deadline=10.0,
                                       hedge=False),
                        clocks=sim_clocks(2, self.SPEED))
                    assert resp.answer is not None
                assert svc.hedges_issued == 0
                # The same request without the opt-out (straggler primary
                # again) hedges as usual.
                svc.serve(ServingRequest(payload=request, deadline=10.0),
                          clocks=sim_clocks(2, self.SPEED))
                assert svc.hedges_issued >= 1
