"""Online shard rebalancing through the router tier.

The acceptance contract pinned here:

- ``ShardedService.rebalance`` moves records between live shards by
  publishing new state epochs on exactly the affected components, on
  every replica;
- requests in flight across the move keep draining against their
  dispatch-time snapshots and answer bit-identically to pre-move
  answers (epoch pinning — "bit-identical before vs after the move");
- the post-move cluster is bit-identical to one built cold over the
  new component map (no state drift from incremental moves), for both
  paper workloads;
- answers after a rebalance are bit-identical across all five
  execution backends;
- updates route to a moved record's new home;
- a rejected rebalance (no map, emptied component) leaves the cluster
  untouched.
"""

from __future__ import annotations

import pytest

from repro.core.adapters import SearchQuery
from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.serving.backends import SequentialBackend, resolve_backend
from repro.serving.router import ReplicaGroup, ShardedService
from repro.workloads.partitioning import (
    make_shard_map,
    shard_corpus,
    shard_ratings,
)

from tests.serving.test_harness import cf_request_factory
from tests.helpers import process

CF_CONFIG = SynopsisConfig(n_iters=20, target_ratio=12.0, seed=5)
SEARCH_CONFIG = SynopsisConfig(n_iters=20, target_ratio=18.0, seed=7)
DEADLINE = 10.0


def clocks(n):
    return [SimulatedClock(speed=1e12) for _ in range(n)]


def assert_cf_equal(a, b):
    assert a.numer == b.numer and a.denom == b.denom


def assert_search_equal(a, b):
    assert [(h.doc_id, h.score) for h in a] == \
        [(h.doc_id, h.score) for h in b]


def build_cf_cluster(matrix, component_map, n_replicas=1):
    parts = shard_ratings(matrix, component_map)
    shards = [ReplicaGroup([
        AccuracyTraderService(_fresh_cf_adapter(), [p], config=CF_CONFIG)
        for _ in range(n_replicas)]) for p in parts]
    return ShardedService(shards, component_map=component_map)


def _fresh_cf_adapter():
    from repro.core.adapters import CFAdapter

    return CFAdapter()


def build_search_cluster(corpus_partition, component_map):
    parts = shard_corpus(corpus_partition, component_map)
    from repro.core.adapters import SearchAdapter

    shards = [AccuracyTraderService(SearchAdapter(), [p],
                                    config=SEARCH_CONFIG,
                                    i_max_fraction=0.4)
              for p in parts]
    return ShardedService(shards, component_map=component_map)


@pytest.fixture()
def cf_cluster(small_ratings):
    cmap = make_shard_map(small_ratings.matrix.n_users, 4)
    svc = build_cf_cluster(small_ratings.matrix, cmap)
    yield svc
    svc.close()


@pytest.fixture()
def cf_req(small_ratings):
    import numpy as np

    return cf_request_factory(small_ratings.matrix)(
        0, np.random.default_rng(3))


class TestShardedRebalance:
    def test_moves_publish_new_epochs_on_affected_components_only(
            self, cf_cluster, cf_req):
        epochs_before = [cf_cluster.shards[s].replicas[0].component_epoch(0)
                         for s in range(4)]
        report = cf_cluster.rebalance({0: 1})   # record 0: comp 0 -> 1
        assert report.n_moved == 1
        assert report.affected_components == [0, 1]
        for c in (0, 1):
            assert report.epochs[c][0] > epochs_before[c]
        for c in (2, 3):
            assert cf_cluster.shards[c].replicas[0].component_epoch(0) \
                == epochs_before[c]

    def test_inflight_requests_bit_identical_across_move(self, cf_cluster,
                                                         cf_req):
        before, _ = process(cf_cluster, cf_req, DEADLINE, clocks=clocks(4))
        # Dispatch-time tasks (what process() builds internally), then
        # the move, then the drain.
        pinned = [t for s in range(4)
                  for t in cf_cluster.shards[s].replicas[0].build_tasks(
                      cf_req, DEADLINE, clocks(1))]
        cf_cluster.rebalance({0: 1, 5: 2})
        outcomes = SequentialBackend().run_tasks(pinned)
        drained = cf_cluster.merge([o.result for o in outcomes], cf_req)
        assert_cf_equal(drained, before)

    def test_post_move_state_equals_cold_build_cf(self, small_ratings,
                                                  cf_cluster, cf_req):
        cf_cluster.rebalance({0: 1, 5: 2, 9: 0})
        cold = build_cf_cluster(small_ratings.matrix,
                                cf_cluster.component_map)
        with cold:
            live_ans, _ = process(cf_cluster, cf_req, DEADLINE,
                                             clocks=clocks(4))
            cold_ans, _ = process(cold, cf_req, DEADLINE, clocks=clocks(4))
            assert_cf_equal(live_ans, cold_ans)
            assert_cf_equal(cf_cluster.exact(cf_req), cold.exact(cf_req))

    def test_post_move_state_equals_cold_build_search(self, small_corpus):
        cmap = make_shard_map(small_corpus.partition.n_docs, 3)
        svc = build_search_cluster(small_corpus.partition, cmap)
        query = SearchQuery(terms=small_corpus.topic_words(2, n=3), k=10)
        with svc:
            svc.rebalance({0: 1, 7: 2})
            cold = build_search_cluster(small_corpus.partition,
                                        svc.component_map)
            with cold:
                live_ans, _ = process(svc, query, DEADLINE, clocks=clocks(3))
                cold_ans, _ = process(cold, query, DEADLINE,
                                           clocks=clocks(3))
                assert_search_equal(live_ans, cold_ans)

    def test_answers_identical_across_all_backends_after_move(
            self, cf_cluster, cf_req):
        cf_cluster.rebalance({0: 1})
        base, _ = process(cf_cluster, cf_req, DEADLINE, clocks=clocks(4),
                                     backend=SequentialBackend())
        for name in ("thread", "process", "persistent", "async"):
            with resolve_backend(name) as backend:
                ans, _ = process(cf_cluster, cf_req, DEADLINE,
                                            clocks=clocks(4),
                                            backend=backend)
                assert_cf_equal(ans, base)

    def test_updates_route_to_new_home(self, cf_cluster):
        assert cf_cluster.locate_record(0)[0] == 0
        cf_cluster.rebalance({0: 1})
        shard, local_component, local_id = cf_cluster.locate_record(0)
        assert shard == 1 and local_component == 0
        # change_points through the map lands on the record's new shard.
        new_part = cf_cluster.shards[1].replicas[0].component_state(
            0).partition
        epoch_before = cf_cluster.shards[1].replicas[0].component_epoch(0)
        cf_cluster.change_points(new_part, [0])
        assert cf_cluster.shards[1].replicas[0].component_epoch(0) \
            > epoch_before

    def test_replicas_all_updated(self, small_ratings, cf_req):
        cmap = make_shard_map(small_ratings.matrix.n_users, 2)
        svc = build_cf_cluster(small_ratings.matrix, cmap, n_replicas=2)
        with svc:
            report = svc.rebalance({0: 1})
            assert all(len(epochs) == 2 for epochs in report.epochs.values())
            answers = [process(r, cf_req, DEADLINE, clocks=clocks(1))[0]
                       for r in svc.shards[0].replicas]
            assert_cf_equal(answers[0], answers[1])

    def test_noop_and_rejected_moves_leave_cluster_untouched(self,
                                                             cf_cluster):
        map_before = cf_cluster.component_map
        report = cf_cluster.rebalance({0: 0})   # already home
        assert report.n_moved == 0 and report.affected_components == []
        assert cf_cluster.component_map is map_before

        # Emptying a component is rejected before any epoch publishes.
        lone = cf_cluster.component_map.members_of(3)
        epochs_before = [cf_cluster.shards[s].replicas[0].component_epoch(0)
                         for s in range(4)]
        with pytest.raises(ValueError, match="empty"):
            cf_cluster.rebalance({int(r): 0 for r in lone})
        assert cf_cluster.component_map is map_before
        assert [cf_cluster.shards[s].replicas[0].component_epoch(0)
                for s in range(4)] == epochs_before

    def test_requires_component_map(self, small_ratings):
        cmap = make_shard_map(small_ratings.matrix.n_users, 2)
        parts = shard_ratings(small_ratings.matrix, cmap)
        svc = ShardedService([
            AccuracyTraderService(_fresh_cf_adapter(), [p],
                                  config=CF_CONFIG) for p in parts])
        with svc:
            with pytest.raises(ValueError, match="component_map"):
                svc.rebalance({0: 1})
