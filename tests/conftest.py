"""Shared fixtures: small, fast instances of both services."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, SearchQuery
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.util.rng import make_rng
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings


@pytest.fixture(scope="session")
def small_ratings():
    """~200-user rating partition with clear cluster structure."""
    return generate_ratings(MovieLensConfig(
        n_users=200, n_items=80, density=0.25, n_clusters=5,
        cluster_spread=0.3, noise=0.3, seed=11,
    ))


@pytest.fixture(scope="session")
def cf_adapter():
    return CFAdapter()


@pytest.fixture(scope="session")
def cf_synopsis(small_ratings, cf_adapter):
    builder = SynopsisBuilder(cf_adapter, SynopsisConfig(
        n_iters=40, target_ratio=15.0, seed=3))
    synopsis, artifacts = builder.build(small_ratings.matrix)
    return synopsis, artifacts


@pytest.fixture()
def cf_request(small_ratings):
    rng = make_rng(5, "cf-req")
    ids, vals = small_ratings.matrix.user_ratings(0)
    n = max(2, int(0.8 * ids.size))
    keep = np.sort(rng.choice(ids.size, size=n, replace=False))
    targets = [i for i in range(10) if i not in set(ids[keep].tolist())][:5]
    return CFRequest(active_items=ids[keep], active_vals=vals[keep],
                     target_items=targets)


@pytest.fixture(scope="session")
def small_corpus():
    """~300-page corpus with 8 topics."""
    return generate_corpus(CorpusConfig(
        n_docs=300, n_topics=8, vocab_size=1600, words_per_topic=150,
        doc_length_mean=60.0, seed=13,
    ))


@pytest.fixture(scope="session")
def search_adapter():
    return SearchAdapter()


@pytest.fixture(scope="session")
def search_synopsis(small_corpus, search_adapter):
    builder = SynopsisBuilder(search_adapter, SynopsisConfig(
        n_iters=30, target_ratio=20.0, seed=3))
    synopsis, artifacts = builder.build(small_corpus.partition)
    return synopsis, artifacts


@pytest.fixture()
def search_query(small_corpus):
    return SearchQuery(terms=small_corpus.topic_words(2, n=3), k=10)
