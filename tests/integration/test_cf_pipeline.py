"""End-to-end integration: CF service offline -> online -> update."""

import numpy as np
import pytest

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.processor import AccuracyAwareProcessor
from repro.core.updater import SynopsisUpdater
from repro.recommender.cf import merge_predictions
from repro.recommender.metrics import accuracy_loss_percent, rmse
from repro.util.rng import make_rng
from repro.workloads.movielens import MovieLensConfig, generate_ratings


@pytest.fixture(scope="module")
def pipeline():
    """Two partitions + synopses + updaters, as one mini deployment."""
    adapter = CFAdapter()
    config = SynopsisConfig(n_iters=40, target_ratio=20.0, seed=0)
    data = generate_ratings(MovieLensConfig(
        n_users=400, n_items=120, density=0.2, seed=21))
    users, items, vals = data.matrix.to_triples()
    partitions, updaters = [], []
    from repro.recommender.matrix import RatingMatrix

    for p in range(2):
        mask = (users % 2) == p
        local = users[mask] // 2
        part = RatingMatrix(local, items[mask], vals[mask],
                            n_users=200, n_items=120)
        synopsis, artifacts = SynopsisBuilder(adapter, config).build(part)
        partitions.append(part)
        updaters.append(SynopsisUpdater(adapter, config, part, synopsis,
                                        artifacts))
    return adapter, data, partitions, updaters


def make_request(data, seed):
    rng = make_rng(seed, "integration")
    proto = int(rng.integers(0, 400))
    f = data.user_factors[proto]
    chosen = rng.choice(120, size=40, replace=False)
    reveal, targets = chosen[:30], chosen[30:]
    raw = data.item_factors[reveal] @ f
    vals = np.clip(1 + 4 / (1 + np.exp(-raw)), 1, 5)
    actual = 1 + 4 / (1 + np.exp(-(data.item_factors[targets] @ f)))
    return CFRequest(reveal, vals, [int(t) for t in targets]), actual


class TestEndToEnd:
    def test_deadline_sweep_monotone_accuracy(self, pipeline):
        """Longer deadlines must not hurt accuracy (Algorithm 1 refines)."""
        adapter, data, partitions, updaters = pipeline
        request, actual = make_request(data, 1)
        losses = []
        exact = merge_predictions(
            [adapter.exact(p, request) for p in partitions],
            active_mean=request.active_mean)
        exact_rmse = rmse(exact.predict_many(request.target_items), actual)
        for deadline in (0.0005, 0.005, 0.5):
            parts = []
            for part, upd in zip(partitions, updaters):
                proc = AccuracyAwareProcessor(adapter, part, upd.synopsis)
                # Speed: full partition scan in ~10 ms.
                clock = SimulatedClock(speed=part.n_users / 0.01)
                result, _ = proc.process(request, deadline, clock=clock)
                parts.append(result)
            merged = merge_predictions(parts, active_mean=request.active_mean)
            approx_rmse = rmse(merged.predict_many(request.target_items), actual)
            losses.append(accuracy_loss_percent(approx_rmse, exact_rmse))
        assert losses[-1] == pytest.approx(0.0, abs=1e-6)
        assert losses[0] >= losses[-1]

    def test_update_then_query_consistent(self, pipeline):
        """After adding users, the synopsis still answers correctly."""
        adapter, data, partitions, updaters = pipeline
        part, upd = partitions[0], updaters[0]
        n = part.n_users

        rng = make_rng(2, "newblock")
        k = 8
        proto = rng.integers(0, 400, k)
        users_l, items_l, vals_l = [], [], []
        for local in range(k):
            f = data.user_factors[proto[local]]
            its = rng.choice(120, size=20, replace=False)
            raw = data.item_factors[its] @ f
            users_l.append(np.full(20, local))
            items_l.append(its)
            vals_l.append(np.clip(1 + 4 / (1 + np.exp(-raw)), 1, 5))
        m2 = part.with_rows_appended(np.concatenate(users_l),
                                     np.concatenate(items_l),
                                     np.concatenate(vals_l))
        report = upd.add_points(m2, np.arange(n, n + k))
        assert report.n_points == k

        request, _ = make_request(data, 3)
        proc = AccuracyAwareProcessor(adapter, m2, upd.synopsis)
        result, rep = proc.process(request, deadline=10.0,
                                   clock=SimulatedClock(speed=1e9))
        exact = adapter.exact(m2, request)
        for item in request.target_items:
            assert result.predict(item) == pytest.approx(exact.predict(item))

    def test_merged_prediction_equals_unpartitioned(self, pipeline):
        """Partitioning must not change the exact prediction."""
        adapter, data, partitions, _ = pipeline
        request, _ = make_request(data, 4)
        merged = merge_predictions(
            [adapter.exact(p, request) for p in partitions],
            active_mean=request.active_mean)
        whole = adapter.exact(data.matrix, request)
        # Note: partition-local user ids differ but the *set* of users is
        # identical, so the Resnick sums agree.
        for item in request.target_items:
            assert merged.predict(item) == pytest.approx(whole.predict(item))
