"""End-to-end integration: search service offline -> online -> update."""

import copy

import numpy as np
import pytest

from repro.core.adapters import SearchAdapter, SearchQuery
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.processor import AccuracyAwareProcessor
from repro.core.updater import SynopsisUpdater
from repro.search.metrics import topk_overlap
from repro.workloads.corpus import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def deployment():
    adapter = SearchAdapter()
    config = SynopsisConfig(n_iters=30, target_ratio=25.0, seed=0)
    corpus = generate_corpus(CorpusConfig(n_docs=500, n_topics=10, seed=31))
    synopsis, artifacts = SynopsisBuilder(adapter, config).build(corpus.partition)
    return adapter, corpus, config, synopsis, artifacts


class TestEndToEnd:
    def test_overlap_improves_with_deadline(self, deployment):
        adapter, corpus, _, synopsis, _ = deployment
        query = SearchQuery(terms=corpus.topic_words(1, n=3), k=10)
        exact_ids = [h.doc_id for h in adapter.exact(corpus.partition, query)]
        proc = AccuracyAwareProcessor(adapter, corpus.partition, synopsis,
                                      i_max_fraction=0.4)
        overlaps = []
        speed = corpus.partition.n_docs / 0.01  # full scan in 10 ms
        for deadline in (0.0001, 0.004, 1.0):
            result, _ = proc.process(query, deadline,
                                     clock=SimulatedClock(speed=speed))
            overlaps.append(topk_overlap([h.doc_id for h in result],
                                         exact_ids))
        assert overlaps[-1] >= overlaps[0]
        assert overlaps[-1] >= 0.8  # the 40% rule recovers most of top-10

    def test_i_max_rule_covers_most_answers(self, deployment):
        """The paper's Figure-4(b) claim: the top 40% ranked groups hold
        the overwhelming share of actual top-10 pages."""
        adapter, corpus, _, synopsis, _ = deployment
        covered, total = 0, 0
        for topic in range(5):
            query = SearchQuery(terms=corpus.topic_words(topic, n=2), k=10)
            exact = adapter.exact(corpus.partition, query)
            if not exact:
                continue
            _, corr = adapter.initial_result(synopsis, query)
            order = np.argsort(-corr, kind="stable")
            cap = int(np.ceil(0.4 * synopsis.n_aggregated))
            top_groups = set(int(g) for g in order[:cap])
            for h in exact:
                total += 1
                if synopsis.index.group_of(h.doc_id) in top_groups:
                    covered += 1
        assert total > 0
        assert covered / total > 0.9

    def test_update_then_query(self, deployment):
        adapter, corpus, config, synopsis, artifacts = deployment
        part = copy.deepcopy(corpus.partition)
        upd = SynopsisUpdater(adapter, config, part,
                              copy.deepcopy(synopsis),
                              copy.deepcopy(artifacts))
        # Add pages heavy in topic-3 words; they should become findable.
        words = corpus.topic_words(3, n=3)
        new_ids = part.add_pages([words * 20 for _ in range(4)])
        upd.add_points(part, new_ids)

        query = SearchQuery(terms=words, k=10)
        proc = AccuracyAwareProcessor(adapter, part, upd.synopsis,
                                      i_max_fraction=0.4)
        result, _ = proc.process(query, deadline=10.0,
                                 clock=SimulatedClock(speed=1e9))
        got = {h.doc_id for h in result}
        assert got & set(new_ids), "new pages must surface in the top-k"
