"""Failure-injection tests: degenerate inputs and extreme conditions."""

import numpy as np
import pytest

from repro.cluster.fanout import FanoutSimulator
from repro.cluster.interference import InterferenceTimeline
from repro.cluster.topology import ClusterSpec
from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, SearchQuery
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.processor import AccuracyAwareProcessor
from repro.recommender.matrix import RatingMatrix
from repro.search.partition import SearchPartition
from repro.strategies.accuracytrader import AccuracyTraderStrategy
from repro.strategies.basic import BasicStrategy


class TestDegenerateCFData:
    def test_constant_ratings(self):
        """All users rate everything identically: correlations are all
        zero, but the pipeline must still run and fall back gracefully."""
        n_u, n_i = 60, 20
        users = np.repeat(np.arange(n_u), n_i)
        items = np.tile(np.arange(n_i), n_u)
        matrix = RatingMatrix(users, items, np.full(users.size, 3.0))
        adapter = CFAdapter()
        synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
            n_iters=10, target_ratio=10.0)).build(matrix)
        request = CFRequest(np.arange(5), np.full(5, 3.0), [10, 11])
        proc = AccuracyAwareProcessor(adapter, matrix, synopsis)
        result, report = proc.process(request, deadline=1.0,
                                      clock=SimulatedClock(speed=1e9))
        # No correlation signal: prediction falls back near the mean.
        assert np.isfinite(result.predict(10))

    def test_single_user_partition(self):
        matrix = RatingMatrix([0, 0], [0, 1], [4.0, 2.0], n_users=1, n_items=3)
        adapter = CFAdapter()
        synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
            n_iters=5, target_ratio=2.0)).build(matrix)
        assert synopsis.n_aggregated == 1
        request = CFRequest([0], [4.0], [2])
        proc = AccuracyAwareProcessor(adapter, matrix, synopsis)
        result, _ = proc.process(request, deadline=1.0,
                                 clock=SimulatedClock(speed=1e9))
        assert np.isfinite(result.predict(2))

    def test_request_with_no_overlap(self):
        """Active user rated only items nobody else rated."""
        matrix = RatingMatrix([0, 1], [0, 1], [5.0, 1.0], n_users=2, n_items=10)
        adapter = CFAdapter()
        synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
            n_iters=5, target_ratio=2.0)).build(matrix)
        request = CFRequest([7, 8], [3.0, 4.0], [9])
        proc = AccuracyAwareProcessor(adapter, matrix, synopsis)
        result, _ = proc.process(request, deadline=1.0,
                                 clock=SimulatedClock(speed=1e9))
        assert result.predict(9) == request.active_mean


class TestDegenerateSearch:
    def test_query_matching_nothing(self):
        part = SearchPartition()
        for i in range(30):
            part.add_page([f"word{i}", "common"])
        adapter = SearchAdapter()
        synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
            n_iters=5, target_ratio=5.0)).build(part)
        query = SearchQuery(terms=["unseen-term"], k=10)
        proc = AccuracyAwareProcessor(adapter, part, synopsis)
        result, _ = proc.process(query, deadline=1.0,
                                 clock=SimulatedClock(speed=1e9))
        assert result == []

    def test_identical_pages(self):
        part = SearchPartition()
        for _ in range(40):
            part.add_page(["same", "content", "everywhere"])
        adapter = SearchAdapter()
        synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
            n_iters=5, target_ratio=8.0)).build(part)
        query = SearchQuery(terms=["content"], k=5)
        proc = AccuracyAwareProcessor(adapter, part, synopsis)
        result, _ = proc.process(query, deadline=1.0,
                                 clock=SimulatedClock(speed=1e9))
        assert len(result) == 5


class TestExtremeCluster:
    def test_interference_spike_recovery(self):
        """A massive mid-session spike: queues must drain afterwards."""
        spec = ClusterSpec(n_components=2, n_nodes=2, base_speed=1000.0,
                           speed_jitter=0.0)
        spike = InterferenceTimeline(2, [(0, 10.0, 15.0, 50.0),
                                         (1, 10.0, 15.0, 50.0)])
        sim = FanoutSimulator(spec, spike)
        arrivals = np.arange(0, 60, 0.5)
        stats = sim.run(arrivals, BasicStrategy(100.0))
        # Latency at the very end is back to the idle scan time.
        late = stats.sub_latencies.reshape(2, -1)[:, -1]
        assert np.all(late < 0.5)

    def test_at_immune_to_spike(self):
        spec = ClusterSpec(n_components=2, n_nodes=2, base_speed=1000.0,
                           speed_jitter=0.0)
        spike = InterferenceTimeline(2, [(0, 10.0, 15.0, 50.0)])
        sim = FanoutSimulator(spec, spike)
        at = AccuracyTraderStrategy(synopsis_work=5.0,
                                    group_works=np.full(10, 10.0),
                                    deadline=0.1)
        stats = sim.run(np.arange(0, 30, 0.2), at)
        # AT sheds refinement during the spike: tail stays near deadline
        # (one started group can overshoot, plus the slowed synopsis pass).
        assert stats.component_tail(100.0) < 1.0

    def test_zero_deadline_at(self):
        at = AccuracyTraderStrategy(synopsis_work=5.0,
                                    group_works=np.ones(3), deadline=0.0)
        at.begin_run(1, 1)
        assert at.service_work(0, 0, 0.0, 0.0, 100.0) == 5.0
