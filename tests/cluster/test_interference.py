"""Tests for interference speed models."""

import numpy as np
import pytest

from repro.cluster.interference import ConstantSpeed, InterferenceTimeline


class TestConstantSpeed:
    def test_always_factor(self):
        m = ConstantSpeed(0.5)
        assert m.multiplier(0, 0.0) == 0.5
        assert m.multiplier(3, 1e9) == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantSpeed(0.0)


class TestInterferenceTimeline:
    def test_idle_node_full_speed(self):
        t = InterferenceTimeline(2, [])
        assert t.multiplier(0, 5.0) == 1.0

    def test_single_job_window(self):
        t = InterferenceTimeline(1, [(0, 10.0, 20.0, 2.0)])
        assert t.multiplier(0, 5.0) == 1.0
        assert t.multiplier(0, 15.0) == pytest.approx(0.5)
        assert t.multiplier(0, 25.0) == 1.0

    def test_overlapping_jobs_multiply(self):
        t = InterferenceTimeline(1, [(0, 0.0, 10.0, 2.0), (0, 5.0, 15.0, 2.0)])
        assert t.multiplier(0, 7.0) == pytest.approx(0.25)
        assert t.multiplier(0, 12.0) == pytest.approx(0.5)

    def test_floor(self):
        t = InterferenceTimeline(1, [(0, 0.0, 10.0, 100.0)], floor=0.1)
        assert t.multiplier(0, 5.0) == pytest.approx(0.1)

    def test_per_node_isolation(self):
        t = InterferenceTimeline(2, [(0, 0.0, 10.0, 2.0)])
        assert t.multiplier(0, 5.0) == pytest.approx(0.5)
        assert t.multiplier(1, 5.0) == 1.0

    def test_vectorised_matches_scalar(self):
        jobs = [(0, 1.0, 3.0, 2.0), (0, 2.0, 6.0, 3.0)]
        t = InterferenceTimeline(1, jobs)
        ts = np.linspace(0, 8, 50)
        vec = t.multipliers(0, ts)
        scal = [t.multiplier(0, float(x)) for x in ts]
        np.testing.assert_allclose(vec, scal)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceTimeline(0, [])
        with pytest.raises(ValueError):
            InterferenceTimeline(1, [(5, 0, 1, 2.0)])   # unknown node
        with pytest.raises(ValueError):
            InterferenceTimeline(1, [(0, 5, 1, 2.0)])   # end < start
        with pytest.raises(ValueError):
            InterferenceTimeline(1, [(0, 0, 1, 0.5)])   # slowdown < 1
        with pytest.raises(IndexError):
            InterferenceTimeline(1, []).multiplier(4, 0.0)

    def test_zero_length_job_ignored(self):
        t = InterferenceTimeline(1, [(0, 5.0, 5.0, 3.0)])
        assert t.multiplier(0, 5.0) == 1.0
