"""Tests for the FIFO fan-out simulator."""

import numpy as np
import pytest

from repro.cluster.fanout import FanoutSimulator
from repro.cluster.interference import ConstantSpeed, InterferenceTimeline
from repro.cluster.topology import ClusterSpec
from repro.strategies.basic import BasicStrategy


def cluster(n=2, speed=100.0):
    return ClusterSpec(n_components=n, n_nodes=n, base_speed=speed,
                       speed_jitter=0.0)


class TestQueueMechanics:
    def test_single_request_latency_is_service_time(self):
        sim = FanoutSimulator(cluster(speed=100.0))
        stats = sim.run([0.0], BasicStrategy(50.0))
        np.testing.assert_allclose(stats.sub_latencies, 0.5)
        np.testing.assert_allclose(stats.request_latencies, [0.5])

    def test_fifo_queueing_delay(self):
        # Two simultaneous arrivals: the second waits for the first.
        sim = FanoutSimulator(cluster(n=1, speed=100.0))
        stats = sim.run([0.0, 0.0], BasicStrategy(100.0))
        np.testing.assert_allclose(np.sort(stats.sub_latencies), [1.0, 2.0])

    def test_idle_gap_resets_queue(self):
        sim = FanoutSimulator(cluster(n=1, speed=100.0))
        stats = sim.run([0.0, 10.0], BasicStrategy(100.0))
        np.testing.assert_allclose(stats.sub_latencies, [1.0, 1.0])

    def test_request_latency_is_max_over_components(self):
        spec = ClusterSpec(n_components=2, n_nodes=2, base_speed=100.0,
                           speed_jitter=0.0)
        # Slow down node 1 permanently.
        speed_model = InterferenceTimeline(2, [(1, 0.0, 1e9, 4.0)])
        sim = FanoutSimulator(spec, speed_model)
        stats = sim.run([0.0], BasicStrategy(100.0))
        assert stats.request_latencies[0] == pytest.approx(4.0)

    def test_unstable_load_grows_queue(self):
        # Service 1s per request at 2 req/s: latencies must trend upward.
        sim = FanoutSimulator(cluster(n=1, speed=100.0))
        arrivals = np.arange(0, 20, 0.5)
        stats = sim.run(arrivals, BasicStrategy(100.0))
        lat = stats.sub_latencies
        assert lat[-1] > lat[0]
        assert lat[-1] > 5.0

    def test_interference_slows_service(self):
        spec = cluster(n=1, speed=100.0)
        slow = InterferenceTimeline(1, [(0, 0.0, 100.0, 2.0)])
        fast_stats = FanoutSimulator(spec).run([0.0], BasicStrategy(100.0))
        slow_stats = FanoutSimulator(spec, slow).run([0.0], BasicStrategy(100.0))
        assert slow_stats.sub_latencies[0] == pytest.approx(
            2 * fast_stats.sub_latencies[0])


class TestValidation:
    def test_unsorted_arrivals_rejected(self):
        sim = FanoutSimulator(cluster())
        with pytest.raises(ValueError):
            sim.run([1.0, 0.5], BasicStrategy(10.0))

    def test_non_1d_rejected(self):
        sim = FanoutSimulator(cluster())
        with pytest.raises(ValueError):
            sim.run([[0.0]], BasicStrategy(10.0))

    def test_empty_arrivals(self):
        sim = FanoutSimulator(cluster())
        stats = sim.run([], BasicStrategy(10.0))
        assert stats.n_requests == 0
        assert stats.sub_latencies.size == 0


class TestStats:
    def test_tail_functions(self):
        sim = FanoutSimulator(cluster(n=4, speed=100.0))
        stats = sim.run(np.linspace(0, 10, 50), BasicStrategy(10.0))
        assert stats.tail_ms() == pytest.approx(stats.component_tail() * 1000)
        assert stats.mean_latency() > 0

    def test_on_complete_called_per_subop(self):
        calls = []

        class Spy(BasicStrategy):
            def on_complete(self, request, component, arrival, done):
                calls.append((request, component))

        sim = FanoutSimulator(cluster(n=3))
        sim.run([0.0, 1.0], Spy(10.0))
        assert sorted(calls) == [(r, c) for r in range(2) for c in range(3)]
