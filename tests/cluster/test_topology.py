"""Tests for cluster topology."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec


class TestClusterSpec:
    def test_speeds_and_nodes(self):
        c = ClusterSpec(n_components=12, n_nodes=4, base_speed=100.0, seed=1)
        assert c.component_speeds.shape == (12,)
        assert np.all(c.component_speeds > 0)
        assert set(c.component_nodes.tolist()) == {0, 1, 2, 3}

    def test_no_jitter(self):
        c = ClusterSpec(n_components=5, n_nodes=5, base_speed=50.0,
                        speed_jitter=0.0)
        np.testing.assert_allclose(c.component_speeds, 50.0)

    def test_jitter_centred_on_base(self):
        c = ClusterSpec(n_components=2000, n_nodes=10, base_speed=100.0,
                        speed_jitter=0.2, seed=2)
        assert abs(np.median(c.component_speeds) - 100.0) < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_components=0)
        with pytest.raises(ValueError):
            ClusterSpec(base_speed=0)
        with pytest.raises(ValueError):
            ClusterSpec(speed_jitter=-1)

    def test_deterministic(self):
        a = ClusterSpec(n_components=10, seed=3)
        b = ClusterSpec(n_components=10, seed=3)
        np.testing.assert_array_equal(a.component_speeds, b.component_speeds)


class TestMirror:
    def test_mirror_on_other_node(self):
        # 36 components over 9 nodes: naive half-ring stride lands on the
        # same node; mirror_of must avoid that.
        c = ClusterSpec(n_components=36, n_nodes=9)
        for comp in range(36):
            m = c.mirror_of(comp)
            assert m != comp
            assert c.component_nodes[m] != c.component_nodes[comp]

    def test_mirror_valid_range(self):
        c = ClusterSpec(n_components=7, n_nodes=3)
        for comp in range(7):
            assert 0 <= c.mirror_of(comp) < 7

    def test_single_component(self):
        c = ClusterSpec(n_components=1, n_nodes=1)
        assert c.mirror_of(0) == 0

    def test_single_node_cluster(self):
        c = ClusterSpec(n_components=4, n_nodes=1)
        for comp in range(4):
            assert c.mirror_of(comp) != comp

    def test_out_of_range(self):
        c = ClusterSpec(n_components=4, n_nodes=2)
        with pytest.raises(IndexError):
            c.mirror_of(4)
