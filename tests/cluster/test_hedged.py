"""Tests for the event-driven hedged (request-reissue) simulator."""

import numpy as np
import pytest

from repro.cluster.hedged import HedgedFanoutSimulator
from repro.cluster.interference import InterferenceTimeline
from repro.cluster.topology import ClusterSpec
from repro.strategies.reissue import ReissueStrategy


def cluster(n=4, nodes=2, speed=100.0):
    return ClusterSpec(n_components=n, n_nodes=nodes, base_speed=speed,
                       speed_jitter=0.0)


class TestBasics:
    def test_single_request(self):
        sim = HedgedFanoutSimulator(cluster())
        stats = sim.run([0.0], ReissueStrategy(50.0))
        np.testing.assert_allclose(stats.sub_latencies, 0.5)
        assert stats.replicas_issued == 0

    def test_matches_fanout_when_no_stragglers(self):
        from repro.cluster.fanout import FanoutSimulator
        from repro.strategies.basic import BasicStrategy

        spec = cluster()
        arrivals = np.linspace(0, 10, 30)
        hedged = HedgedFanoutSimulator(spec).run(arrivals, ReissueStrategy(50.0))
        plain = FanoutSimulator(spec).run(arrivals, BasicStrategy(50.0))
        # Light load, no variance: nothing gets hedged, latencies identical.
        np.testing.assert_allclose(np.sort(hedged.sub_latencies),
                                   np.sort(plain.sub_latencies))

    def test_empty_arrivals(self):
        stats = HedgedFanoutSimulator(cluster()).run([], ReissueStrategy(10.0))
        assert stats.n_requests == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            HedgedFanoutSimulator(cluster()).run([2.0, 1.0],
                                                 ReissueStrategy(10.0))


class TestHedging:
    def test_straggler_rescued_by_mirror(self):
        # Node 0 is 50x slow; the mirror on node 1 should answer far
        # sooner than the stuck primary would.
        spec = ClusterSpec(n_components=2, n_nodes=2, base_speed=100.0,
                           speed_jitter=0.0)
        slow = InterferenceTimeline(2, [(0, 0.0, 1e9, 50.0)])
        sim = HedgedFanoutSimulator(spec, slow)
        # Arrivals slow enough that the mirror has headroom for its own
        # primaries (1s each) plus the replicas it absorbs.
        arrivals = np.arange(0, 120, 3.0)
        stats = sim.run(arrivals, ReissueStrategy(100.0))
        assert stats.replicas_issued > 0
        # Stuck-component sub-ops were effectively answered by the mirror:
        # the tail must be far below the 50s a lone slow scan would take.
        assert stats.component_tail(99.0) < 25.0

    def test_at_most_one_replica_per_subop(self):
        spec = cluster(n=2, nodes=2, speed=100.0)
        slow = InterferenceTimeline(2, [(0, 0.0, 1e9, 10.0)])
        stats = HedgedFanoutSimulator(spec, slow).run(
            np.arange(0, 20, 1.0), ReissueStrategy(100.0))
        assert stats.replicas_issued <= stats.n_requests * 2

    def test_hedge_rate(self):
        spec = cluster()
        stats = HedgedFanoutSimulator(spec).run([0.0], ReissueStrategy(10.0))
        assert stats.hedge_rate() == 0.0


class TestReissueStrategy:
    def test_threshold_adapts(self):
        s = ReissueStrategy(100.0, window=100, recompute_every=10)
        assert s.threshold == 0.1  # initial prior
        for _ in range(50):
            s.observe(1.0)
        assert s.threshold == pytest.approx(1.0)

    def test_reset(self):
        s = ReissueStrategy(100.0)
        for _ in range(300):
            s.observe(2.0)
        s.reset(initial_expected_latency=0.5)
        assert s.threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ReissueStrategy(0.0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, hedge_percentile=0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, initial_expected_latency=0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, window=5)

    def test_expected_scan_time(self):
        assert ReissueStrategy(200.0).expected_scan_time(100.0) == 2.0
