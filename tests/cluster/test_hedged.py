"""Tests for the event-driven hedged (request-reissue) simulator."""

import numpy as np
import pytest

from repro.cluster.hedged import HedgedFanoutSimulator
from repro.cluster.interference import InterferenceTimeline
from repro.cluster.topology import ClusterSpec
from repro.strategies.reissue import ReissueStrategy


def cluster(n=4, nodes=2, speed=100.0):
    return ClusterSpec(n_components=n, n_nodes=nodes, base_speed=speed,
                       speed_jitter=0.0)


class TestBasics:
    def test_single_request(self):
        sim = HedgedFanoutSimulator(cluster())
        stats = sim.run([0.0], ReissueStrategy(50.0))
        np.testing.assert_allclose(stats.sub_latencies, 0.5)
        assert stats.replicas_issued == 0

    def test_matches_fanout_when_no_stragglers(self):
        from repro.cluster.fanout import FanoutSimulator
        from repro.strategies.basic import BasicStrategy

        spec = cluster()
        arrivals = np.linspace(0, 10, 30)
        hedged = HedgedFanoutSimulator(spec).run(arrivals, ReissueStrategy(50.0))
        plain = FanoutSimulator(spec).run(arrivals, BasicStrategy(50.0))
        # Light load, no variance: nothing gets hedged, latencies identical.
        np.testing.assert_allclose(np.sort(hedged.sub_latencies),
                                   np.sort(plain.sub_latencies))

    def test_empty_arrivals(self):
        stats = HedgedFanoutSimulator(cluster()).run([], ReissueStrategy(10.0))
        assert stats.n_requests == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            HedgedFanoutSimulator(cluster()).run([2.0, 1.0],
                                                 ReissueStrategy(10.0))


class TestHedging:
    def test_straggler_rescued_by_mirror(self):
        # Node 0 is 50x slow; the mirror on node 1 should answer far
        # sooner than the stuck primary would.
        spec = ClusterSpec(n_components=2, n_nodes=2, base_speed=100.0,
                           speed_jitter=0.0)
        slow = InterferenceTimeline(2, [(0, 0.0, 1e9, 50.0)])
        sim = HedgedFanoutSimulator(spec, slow)
        # Arrivals slow enough that the mirror has headroom for its own
        # primaries (1s each) plus the replicas it absorbs.
        arrivals = np.arange(0, 120, 3.0)
        stats = sim.run(arrivals, ReissueStrategy(100.0))
        assert stats.replicas_issued > 0
        # Stuck-component sub-ops were effectively answered by the mirror:
        # the tail must be far below the 50s a lone slow scan would take.
        assert stats.component_tail(99.0) < 25.0

    def test_at_most_one_replica_per_subop(self):
        spec = cluster(n=2, nodes=2, speed=100.0)
        slow = InterferenceTimeline(2, [(0, 0.0, 1e9, 10.0)])
        stats = HedgedFanoutSimulator(spec, slow).run(
            np.arange(0, 20, 1.0), ReissueStrategy(100.0))
        assert stats.replicas_issued <= stats.n_requests * 2

    def test_hedge_rate(self):
        spec = cluster()
        stats = HedgedFanoutSimulator(spec).run([0.0], ReissueStrategy(10.0))
        assert stats.hedge_rate() == 0.0


class TestCancellationSemantics:
    """Pin the module docstring's three tied-request promises exactly.

    All scenarios use base_speed=100 and full_work=100 (1 s service), so
    every event time is closed-form; the adaptive threshold stays at its
    prior 3 * expected_scan_time = 3.0 s throughout (too few completions
    to trigger a recompute).
    """

    @staticmethod
    def spec():
        return ClusterSpec(n_components=2, n_nodes=2, base_speed=100.0,
                           speed_jitter=0.0)

    def test_queued_copy_cancelled_on_sibling_completion(self):
        # Node 0 is 3.4x slow only for jobs starting in [0, 0.1]:
        #   comp0: req0 0-3.4 | req1 3.4-4.4 | req2 4.4-5.4 | req3 5.4-6.4
        #   comp1: req0 0-1.0 | req1 1.3-2.3 | req2 2.6-3.6 | ...
        # req0-c0's hedge fires at t=3.0 while comp1 is busy, so the
        # replica R0 is *queued*; the primary answers at 3.4.  When comp1
        # frees at 3.6 it must skip the dead R0 and serve req3-c1
        # immediately (3.6-4.6).  Without queued-copy cancellation,
        # req3-c1 would start a full second later.
        slow = InterferenceTimeline(2, [(0, 0.0, 0.1, 3.4)])
        sim = HedgedFanoutSimulator(self.spec(), slow)
        arrivals = np.array([0.0, 1.3, 2.6, 3.45])
        stats = sim.run(arrivals, ReissueStrategy(100.0))
        # R0 (req0-c0 at 3.0) and R1 (req1-c0 at 4.3) are both queued
        # behind busy comp1 and both cancelled before entering service.
        assert stats.replicas_issued == 2
        expected = np.array([
            3.4, 1.0,            # req0: slow primary, clean c1
            3.1, 1.0,            # req1: c0 done 4.4 (queued behind req0)
            2.8, 1.0,            # req2
            2.95, 1.15,          # req3: c1 = 4.6 - 3.45 — NOT 2.15
        ])
        np.testing.assert_allclose(stats.sub_latencies, expected)

    def test_in_service_copy_runs_to_completion(self):
        # comp0: req0 0-3.5 | req1 3.5-4.5;  comp1: req0 0-1.0.
        # req0-c0's hedge at t=3.0 finds comp1 idle: replica R0 enters
        # service (3.0-4.0).  The primary answers first (3.5), but R0 is
        # *in service* and must run to completion — req1-c1 (arrived 3.2)
        # waits for comp1 until 4.0 and finishes at 5.0.  Preemption
        # would have freed comp1 at 3.5 and given 1.3 instead of 1.8.
        slow = InterferenceTimeline(2, [(0, 0.0, 0.1, 3.5)])
        sim = HedgedFanoutSimulator(self.spec(), slow)
        stats = sim.run(np.array([0.0, 3.2]), ReissueStrategy(100.0))
        assert stats.replicas_issued == 1
        expected = np.array([
            3.5, 1.0,            # req0: primary beats the 3.0-4.0 replica
            1.3, 1.8,            # req1: c1 blocked behind the live replica
        ])
        np.testing.assert_allclose(stats.sub_latencies, expected)

    def test_at_most_one_replica_per_suboperation(self):
        # comp0 stuck 50x slow: req0-c0 outstanding for 50 s, i.e. more
        # than 16 thresholds — still exactly one replica is issued, and
        # it rescues the sub-operation at 4.0 (hedge at 3.0 + 1 s scan).
        slow = InterferenceTimeline(2, [(0, 0.0, 1e9, 50.0)])
        sim = HedgedFanoutSimulator(self.spec(), slow)
        stats = sim.run(np.array([0.0]), ReissueStrategy(100.0))
        assert stats.replicas_issued == 1
        np.testing.assert_allclose(stats.sub_latencies, [4.0, 1.0])
        assert stats.hedge_rate() == 0.5


class TestReissueStrategy:
    def test_threshold_adapts(self):
        s = ReissueStrategy(100.0, window=100, recompute_every=10)
        assert s.threshold == 0.1  # initial prior
        for _ in range(50):
            s.observe(1.0)
        assert s.threshold == pytest.approx(1.0)

    def test_reset(self):
        s = ReissueStrategy(100.0)
        for _ in range(300):
            s.observe(2.0)
        s.reset(initial_expected_latency=0.5)
        assert s.threshold == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ReissueStrategy(0.0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, hedge_percentile=0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, initial_expected_latency=0)
        with pytest.raises(ValueError):
            ReissueStrategy(10.0, window=5)

    def test_expected_scan_time(self):
        assert ReissueStrategy(200.0).expected_scan_time(100.0) == 2.0
