"""Async serving: an event loop, admission control, and budgeted hedging.

Four short acts on one CF workload:

1. **Concurrency headroom** — a burst of 400 requests, each parked on a
   ~60 ms storage stall, served by the async tier: the event loop holds
   the whole burst in flight at once, where a thread pool would need
   400 workers (`ThreadPoolBackend` tops out at ``max_concurrency``).
2. **Admission control** — the same burst against a deliberately tiny
   capacity (8 slots, 16 queue places): excess requests are shed on
   arrival (reject-on-full) or at dispatch once their queue wait has
   eaten the deadline (deadline-aware drop), and the counters land in
   ``ServingRunStats``.
3. **Budgeted hedging, async edition** — a 2-shard x 2-replica cluster
   with a straggling replica, hedged under the default 5% budget: the
   losing copy is *really* cancelled mid-stall (its remaining awaits
   never run), and the realized hedge rate stays within the budget.
4. **Priority classes** — the same overloaded burst, but each request
   carries a typed ``ServingRequest`` envelope with a request class
   (accuracy-critical / latency-critical / best-effort) and admission
   runs the class-aware ``PriorityShedPolicy``: best-effort traffic
   absorbs the overload, accuracy-critical traffic is never shed, and
   the per-class breakdown lands in ``ServingRunStats``.

Run:  PYTHONPATH=src python examples/async_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AccuracyTraderService, CFAdapter, CFRequest, \
    SynopsisConfig
from repro.serving import (
    AdmissionController,
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
    DeadlineAwareDrop,
    LoadGenerator,
    PriorityShedPolicy,
    RejectOnFull,
    ReplicaGroup,
    RequestClass,
    ServingRequest,
    ShardedService,
)
from repro.strategies.reissue import ReissueStrategy
from repro.workloads import MovieLensConfig, generate_ratings, split_ratings

CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=23)
BURST = 400


def main() -> None:
    data = generate_ratings(MovieLensConfig(
        n_users=160, n_items=40, density=0.25, n_clusters=5, seed=23))
    matrix = data.matrix

    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=[0, 1, 2])

    loadgen = LoadGenerator(factory, seed=23)
    stall = AsyncStallAdapter(CFAdapter(), synopsis_stall=0.06,
                              group_stall=0.0)

    # --- act 1: the whole burst in flight on one loop -------------------
    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=0)
    burst = loadgen.fixed(np.zeros(BURST))
    with svc, AsyncExecutionBackend() as backend:
        harness = AsyncServingHarness(svc, deadline=10.0, backend=backend)
        stats = harness.run_open_loop(burst)
    print(f"async tier: {stats.n_requests} requests, "
          f"{stats.inflight_max} in flight at peak, "
          f"{1e3 * stats.p99():.0f} ms p99, "
          f"{stats.duration:.2f} s total")
    print("  (every request stalls 60 ms; a thread tier would need "
          f"{BURST} workers to match)\n")

    # --- act 2: the same burst behind admission control -----------------
    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=0)
    admission = AdmissionController(
        max_pending=16, max_inflight=8,
        policies=[RejectOnFull(), DeadlineAwareDrop(max_wait_fraction=1.0)])
    with svc, AsyncExecutionBackend() as backend:
        harness = AsyncServingHarness(svc, deadline=0.1, backend=backend,
                                      admission=admission)
        stats = harness.run_open_loop(burst)
    print(f"admission-controlled: {stats.offered} offered, "
          f"{stats.n_requests} served, {stats.shed} shed "
          f"({100 * stats.shed_rate():.0f}%)")
    print(f"  shed reasons: {stats.shed_reasons}, "
          f"peak queue depth {stats.queue_depth_max}, "
          f"peak in-flight {stats.inflight_max}\n")

    # --- act 3: budgeted hedging with real cancellation -----------------
    parts = split_ratings(matrix, 2)

    def replica(slow: bool, part):
        s = 0.05 if slow else 0.002
        return AccuracyTraderService(
            AsyncStallAdapter(CFAdapter(), synopsis_stall=s, group_stall=s),
            [part], config=CONFIG, i_max=2)

    with AsyncExecutionBackend() as backend:
        svc = ShardedService(
            [ReplicaGroup([replica(True, parts[0]),
                           replica(False, parts[0])]),
             ReplicaGroup([replica(False, parts[1]),
                           replica(False, parts[1])])],
            backend=backend,
            hedge=ReissueStrategy(100.0, initial_expected_latency=0.015))
        with svc:
            harness = AsyncServingHarness(svc, deadline=10.0,
                                          backend=backend)
            stats = harness.run_open_loop(
                loadgen.fixed(np.arange(48) / 60.0))
    print(f"sharded async, straggler on shard 0 replica 0, "
          f"default {100 * svc.hedge_budget:.0f}% hedge budget:")
    print(f"  {stats.hedges_issued} hedges / {stats.shard_calls} shard "
          f"calls (rate {stats.hedge_rate():.3f}), "
          f"{stats.hedge_wins} hedge wins, "
          f"{1e3 * stats.p99():.0f} ms p99")
    print("  losing copies are cancelled mid-stall — the async tier's "
          "tied requests,\n  bounded so a systemic slowdown cannot "
          "double cluster load.\n")

    # --- act 4: typed envelopes + class-aware shedding ------------------
    classes = [RequestClass.ACCURACY_CRITICAL,
               RequestClass.LATENCY_CRITICAL,
               RequestClass.BEST_EFFORT]

    def typed_factory(i, rng):
        # The same payloads as act 1/2, now wrapped in typed envelopes:
        # one third of the traffic per request class.
        return ServingRequest(payload=factory(i, rng),
                              request_class=classes[i % len(classes)])

    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=0)
    # 2x overload: capacity is 8 slots / 60 ms stall ~ 133 rps; offer
    # ~266 rps of mixed-class traffic and let the class policy decide
    # who absorbs it.
    mixed = LoadGenerator(typed_factory, seed=23).fixed(
        np.arange(BURST) / 266.0)
    # Aggressive low-class thresholds keep the standing queue short, so
    # the accuracy-critical threshold (queue full) stays out of reach.
    admission = AdmissionController(
        max_pending=24, max_inflight=8,
        policies=[PriorityShedPolicy(
            thresholds={RequestClass.BEST_EFFORT: 0.25,
                        RequestClass.LATENCY_CRITICAL: 0.5})])
    with svc, AsyncExecutionBackend() as backend:
        harness = AsyncServingHarness(svc, deadline=10.0, backend=backend,
                                      admission=admission)
        stats = harness.run_open_loop(mixed)
    print(f"mixed-class overload ({stats.offered} offered, "
          f"{stats.n_requests} served) under PriorityShedPolicy:")
    for cls, row in stats.class_breakdown().items():
        print(f"  {cls:>19}: {row['served']:>3} served, "
              f"{row['shed']:>3} shed, p99 {1e3 * row['p99_s']:.0f} ms")
    print("  best-effort absorbs the overload; accuracy-critical is "
          "shed last\n  (and here: never) — the paper's trade-off, "
          "enforced at admission.")


if __name__ == "__main__":
    main()
