"""Cluster scenario: the four techniques under rising load (mini Table 1).

Simulates the paper's deployment shape — requests fanning out to parallel
components with co-located MapReduce interference — and prints the
99.9th-percentile component latency of Basic / Request reissue /
AccuracyTrader, plus partial execution's skip fraction, as the arrival
rate rises past the cluster's capacity.

Run:  python examples/tail_latency_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ExperimentScale, ServiceLatencyProfile, run_techniques
from repro.util import make_rng
from repro.workloads import poisson_arrivals


def main() -> None:
    profile = ServiceLatencyProfile.cf()       # 4,000-user partitions
    scale = ExperimentScale(n_components=24, n_nodes=6, session_s=45.0)
    print(f"cluster: {scale.n_components} components on {scale.n_nodes} nodes, "
          f"idle full scan {1000 * profile.idle_scan_s:.0f} ms, "
          f"deadline {1000 * profile.deadline:.0f} ms\n")

    header = (f"{'rate':>5}  {'basic p99.9':>12}  {'reissue p99.9':>13}  "
              f"{'AT p99.9':>9}  {'AT groups':>9}  {'partial skipped':>15}")
    print(header)
    for rate in (20, 40, 60, 80, 100):
        arrivals = poisson_arrivals(rate, scale.session_s,
                                    make_rng(1, "example", rate))
        runs = run_techniques(arrivals, profile, scale)
        at = runs["at"].strategy
        pe = runs["partial"].strategy
        skipped = 100.0 * (1.0 - pe.used_fractions().mean())
        print(f"{rate:>5}  {runs['basic'].tail_ms():>10,.0f}ms  "
              f"{runs['reissue'].tail_ms():>11,.0f}ms  "
              f"{runs['at'].tail_ms():>7.0f}ms  "
              f"{100 * at.mean_refined_fraction():>8.0f}%  "
              f"{skipped:>14.1f}%")

    print("\nShapes to notice (paper Table 1): reissue wins at light load; "
          "basic and reissue explode past capacity; AccuracyTrader stays "
          "pinned at the deadline while still refining as much data as "
          "time allows.")


if __name__ == "__main__":
    main()
