"""Distributed tracing: one hedged, sharded, remote request, end to end.

One CF request is served through the full serving stack — harness ->
``ShardedService`` router (with a live hedged re-issue against an
injected straggler replica) -> ``ReplicaGroup`` -> a shard living in
its own OS process (``RemoteServable``) — with the telemetry plane on.
The request's envelope roots a trace; every hop records spans
(routing, hedge primary/sibling, wire RPCs with byte counts, remote
state fetch + kernel execution), and the worker-side spans ride the
outcomes back across the process boundary to stitch into one timeline.

The script renders that timeline as ASCII and writes a Chrome
``trace_event`` file loadable in chrome://tracing or
https://ui.perfetto.dev.

Run:  PYTHONPATH=src python examples/tracing_serving.py
"""

from __future__ import annotations

import os

from repro.core import AccuracyTraderService, CFAdapter, CFRequest, \
    SynopsisConfig
from repro.serving import (
    IOStallAdapter,
    RemoteServable,
    ReplicaGroup,
    ShardedService,
    ThreadPoolBackend,
    Tracer,
    as_envelope,
    use_tracer,
)
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=19)
DEADLINE_S = 10.0
STALL_S = 0.03           # straggler replica: per synopsis/group fetch
HEDGE_TRIGGER_S = 0.02   # re-issue once the primary looks slow
TIMELINE_WIDTH = 56


def request_for(matrix, user):
    ids, vals = matrix.user_ratings(user % matrix.n_users)
    targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
    return CFRequest(active_items=ids, active_vals=vals,
                     target_items=targets)


def build_cluster(parts, backend):
    """Shard 0: straggler + clean replica (hedging bait); shard 1: remote."""
    straggler = IOStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                               group_stall=STALL_S)
    shard0 = ReplicaGroup([
        AccuracyTraderService(straggler, [parts[0]], config=CONFIG,
                              i_max=3),
        AccuracyTraderService(CFAdapter(), [parts[0]], config=CONFIG,
                              i_max=3),
    ])
    remote = RemoteServable.spawn(AccuracyTraderService, CFAdapter(),
                                  [parts[1]], config=CONFIG)
    shard1 = ReplicaGroup([remote])
    svc = ShardedService(
        [shard0, shard1], backend=backend,
        hedge=ReissueStrategy(100.0,
                              initial_expected_latency=HEDGE_TRIGGER_S),
        hedge_budget=None)
    return svc, remote


def render_timeline(spans):
    """ASCII swimlane: one row per span, indented by tree depth."""
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    total = max(t1 - t0, 1e-9)
    depth = {}
    by_id = {s.span_id: s for s in spans}

    def depth_of(span):
        d, parent = 0, span.parent_id
        while parent in by_id:
            d += 1
            parent = by_id[parent].parent_id
        return d

    for s in spans:
        depth[s.span_id] = depth_of(s)

    this_pid = os.getpid()
    print(f"  {'span':<32}{'pid':>7}{'ms':>9}  timeline")
    for s in sorted(spans, key=lambda s: (s.start, s.span_id)):
        lo = int(TIMELINE_WIDTH * (s.start - t0) / total)
        hi = max(lo + 1, int(TIMELINE_WIDTH * (s.end - t0) / total))
        bar = " " * lo + "#" * (hi - lo)
        label = "  " * depth[s.span_id] + s.name
        extra = ""
        if "winner" in s.tags:
            extra = " *win*" if s.tags["winner"] else " (lost)"
        pid = "local" if s.pid == this_pid else str(s.pid)
        print(f"  {label + extra:<32}{pid:>7}{1e3 * s.duration:>9.1f}"
              f"  |{bar:<{TIMELINE_WIDTH}}|")


def main():
    ratings = generate_ratings(MovieLensConfig(
        n_users=200, n_items=50, density=0.25, n_clusters=5,
        cluster_spread=0.3, noise=0.3, seed=19))
    parts = split_ratings(ratings.matrix, 2)
    tracer = Tracer()

    with ThreadPoolBackend(max_workers=12) as backend:
        svc, remote = build_cluster(parts, backend)
        try:
            with use_tracer(tracer):
                # A few requests so round-robin lands one on the
                # straggler and the hedge fires.
                responses = [
                    svc.serve(as_envelope(request_for(ratings.matrix, u),
                                          DEADLINE_S))
                    for u in range(4)]
        finally:
            remote.close()

    print("=== one hedged, sharded, remote request ===")
    hedged = [
        tid for tid in tracer.trace_ids()
        if any(s.name == "shard.hedge" for s in tracer.spans_of(tid))]
    trace_id = hedged[0] if hedged else tracer.trace_ids()[0]
    spans = tracer.spans_of(trace_id)
    print(f"trace {trace_id}: {len(spans)} spans, "
          f"{len({s.pid for s in spans})} processes, "
          f"hedge {'fired' if hedged else 'did not fire'}\n")
    render_timeline(spans)

    wire = [s for s in spans if s.name.startswith("wire.")]
    if wire:
        sent = sum(s.tags.get("bytes_sent", 0) for s in wire)
        received = sum(s.tags.get("bytes_received", 0) for s in wire)
        print(f"\nwire spans: {len(wire)} "
              f"({sent} B out, {received} B back)")

    out = "TRACE_serving.json"
    tracer.chrome_trace(out)
    n_events = len(tracer.chrome_trace()["traceEvents"])
    print(f"answers served: {sum(r.answer is not None for r in responses)}"
          f"/{len(responses)}")
    print(f"wrote {out} ({n_events} events) — open in chrome://tracing "
          "or ui.perfetto.dev")


if __name__ == "__main__":
    main()
