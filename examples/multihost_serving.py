"""Multi-host serving: shards in their own processes, state as deltas.

Three short acts on one CF workload:

1. **A socket cluster that answers like a local one** — two shards, each
   an ``AccuracyTraderService`` spawned into its own OS process and
   reached through length-prefixed TCP framing (``RemoteServable``),
   composed into the ordinary ``ShardedService`` router.  The cluster
   answers a request stream bit-identically to the in-process service it
   replaces.
2. **Updates travel as deltas** — the wire state plane
   (``RemoteBackend``): each worker receives a component's snapshot once
   per epoch, and when ``change_points`` publishes a new epoch the
   transition ships as the smallest of a *semantic* delta (just the
   re-aggregated groups the update's hint names), a content-defined
   CDC byte delta, or the full snapshot — bytes scale with the edit,
   not the synopsis.
3. **The counters to watch** — per-link bytes sent/received and the
   full/CDC/semantic publication breakdown, the numbers a deployment
   would alert on.

Run:  PYTHONPATH=src python examples/multihost_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AccuracyTraderService, CFAdapter, CFRequest, \
    SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.serving import RemoteBackend, RemoteServable, ReplicaGroup, \
    ShardedService
from repro.serving.envelope import as_envelope
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=19)
DEADLINE_S = 10.0


def sim_clocks(n):
    return [SimulatedClock(speed=1e12) for _ in range(n)]


def request_for(matrix, user):
    ids, vals = matrix.user_ratings(user % matrix.n_users)
    targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
    return CFRequest(active_items=ids, active_vals=vals,
                     target_items=targets)


def act_1_socket_cluster(matrix, parts):
    print("=== 1. a socket cluster that answers like a local one ===")
    local = ShardedService(
        [ReplicaGroup([AccuracyTraderService(CFAdapter(), [p],
                                             config=CONFIG)])
         for p in parts])
    remotes = [RemoteServable.spawn(AccuracyTraderService, CFAdapter(),
                                    [p], config=CONFIG) for p in parts]
    cluster = ShardedService([ReplicaGroup([r]) for r in remotes])
    try:
        identical = 0
        for user in range(8):
            env = as_envelope(request_for(matrix, user), DEADLINE_S)
            a = local.serve(env, clocks=sim_clocks(len(parts)))
            b = cluster.serve(env, clocks=sim_clocks(len(parts)))
            identical += (a.answer.numer == b.answer.numer
                          and a.answer.denom == b.answer.denom
                          and a.state_epochs == b.state_epochs)
        print(f"  {identical}/8 requests bit-identical across "
              f"{len(remotes)} shard processes")
        for i, remote in enumerate(remotes):
            counters = remote.transport_counters()
            print(f"  shard {i}: {counters['bytes_sent']} B sent, "
                  f"{counters['bytes_received']} B received")
    finally:
        for remote in remotes:
            remote.close()
    print()


def act_2_delta_state_plane(matrix, parts):
    print("=== 2. updates travel as deltas ===")
    service = AccuracyTraderService(CFAdapter(), parts, config=CONFIG)
    backend = RemoteBackend(n_workers=1)
    record_ids = CFAdapter().record_ids(parts[0])
    env = as_envelope(request_for(matrix, 0), DEADLINE_S)
    try:
        backend.run_tasks(service.build_tasks(env,
                                              clocks=sim_clocks(len(parts))))
        base = backend.transport_counters()
        full_kb = base["state_full_bytes"] / len(parts) / 1e3
        print(f"  cold start: {base['state_full_publishes']} full "
              f"snapshots published (~{full_kb:.0f} KB/component)")
        prev = base
        for edit in (2, 32):
            service.change_points(0, parts[0],
                                  np.asarray(record_ids[:edit]))
            backend.run_tasks(service.build_tasks(
                env, clocks=sim_clocks(len(parts))))
            cur = backend.transport_counters()
            semantic_kb = (cur["state_semantic_bytes"]
                           - prev["state_semantic_bytes"]) / 1e3
            cdc_kb = (cur["state_delta_bytes"]
                      - prev["state_delta_bytes"]) / 1e3
            kind = "semantic" if semantic_kb else "CDC"
            shipped_kb = semantic_kb or cdc_kb
            print(f"  change_points({edit} records): epoch travelled as a "
                  f"{shipped_kb:.0f} KB {kind} delta "
                  f"({shipped_kb / full_kb:.0%} of a snapshot)")
            prev = cur
        print("=== 3. the counters to watch ===")
        for key, value in sorted(backend.transport_counters().items()):
            print(f"  {key:>22} = {value}")
    finally:
        backend.close()
        service.close()


def main():
    ratings = generate_ratings(MovieLensConfig(
        n_users=600, n_items=80, density=0.2, n_clusters=5,
        cluster_spread=0.3, noise=0.3, seed=19))
    parts = split_ratings(ratings.matrix, 2)
    act_1_socket_cluster(ratings.matrix, parts)
    act_2_delta_state_plane(ratings.matrix, parts)


if __name__ == "__main__":
    main()
