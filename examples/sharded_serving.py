"""Sharded serving: a routed cluster with live hedged re-issue.

Builds the same CF workload twice:

1. one monolithic 4-component ``AccuracyTraderService``;
2. a ``ShardedService`` — 2 shards x 2 replicas over the *same* four
   partitions, with shard 0's replica 0 paying a 10x storage stall
   (a struggling node).

It then shows the three router guarantees in action:

- the routed cluster answers **bit-identically** to the monolith
  (same partitions, same associative merge, same refinement);
- the ``ServingHarness`` drives both through the **same API**;
- with a ``ReissueStrategy`` attached, a request routed to the slow
  replica is **re-issued on its sibling** after the adaptive threshold,
  and the first answer wins — p99 collapses to clean-replica latency;
- with a component ``ShardMap`` attached, ``rebalance()`` **moves
  records between live shards**: only the affected components rebuild,
  each published as a new state epoch, while requests dispatched before
  the move drain bit-identically against their pinned snapshots.

Run:  PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

from repro.core import AccuracyTraderService, CFAdapter, CFRequest, SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    ReplicaGroup,
    ServingHarness,
    ShardedService,
    ThreadPoolBackend,
    as_envelope,
)
from repro.strategies.reissue import ReissueStrategy
from repro.workloads import MovieLensConfig, generate_ratings, split_ratings

STALL_S = 2e-3
STRAGGLER_STALL_S = 2e-2
CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=23)


def build_cluster(parts, with_straggler: bool):
    """2 shards x 2 replicas over ``parts`` (4 partitions)."""
    shards = []
    for s, shard_parts in enumerate((parts[0:2], parts[2:4])):
        replicas = []
        for r in range(2):
            stall = (STRAGGLER_STALL_S
                     if with_straggler and s == 0 and r == 0 else STALL_S)
            adapter = IOStallAdapter(CFAdapter(), synopsis_stall=stall,
                                     group_stall=stall)
            replicas.append(AccuracyTraderService(adapter, shard_parts,
                                                  config=CONFIG, i_max=4))
        shards.append(ReplicaGroup(replicas))
    return shards


def main() -> None:
    data = generate_ratings(MovieLensConfig(
        n_users=240, n_items=60, density=0.25, n_clusters=5, seed=23))
    parts = split_ratings(data.matrix, 4)
    matrix = data.matrix

    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [int(t) for t in rng.choice(matrix.n_items, size=4,
                                              replace=False)]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    loadgen = LoadGenerator(factory, seed=23)

    # --- routed == monolithic, bit for bit -----------------------------
    mono = AccuracyTraderService(CFAdapter(), parts, config=CONFIG, i_max=4)
    routed = ShardedService(build_cluster(parts, with_straggler=False))
    request = factory(0, __import__("numpy").random.default_rng(0))
    clocks = lambda: [SimulatedClock(speed=500.0) for _ in range(4)]  # noqa: E731
    mono_answer = mono.serve(as_envelope(request, 0.05),
                             clocks=clocks()).answer
    routed_answer = routed.serve(as_envelope(request, 0.05),
                                 clocks=clocks()).answer
    assert routed_answer.numer == mono_answer.numer
    assert routed_answer.denom == mono_answer.denom
    print("2 shards x 2 replicas == monolithic 4-component service: "
          "answers bit-identical\n")

    # --- hedged vs unhedged under a straggler replica ------------------
    load = loadgen.closed_loop(n_clients=1, n_requests=12)
    print(f"straggler: shard 0 replica 0 at "
          f"{1e3 * STRAGGLER_STALL_S:.0f} ms/fetch "
          f"(clean replicas {1e3 * STALL_S:.0f} ms/fetch)")
    print(f"{'routing':<12}{'req/s':>8}{'p50 ms':>9}{'p95 ms':>9}"
          f"{'p99 ms':>9}{'hedges':>8}{'wins':>6}")
    for hedged in (False, True):
        hedge = (ReissueStrategy(100.0, initial_expected_latency=0.015)
                 if hedged else None)
        with ThreadPoolBackend(max_workers=16) as backend:
            # hedge_budget=None: this walkthrough wants every straggler
            # re-issued; see examples/async_serving.py for the capped,
            # budgeted behaviour a production deployment would run with.
            with ShardedService(build_cluster(parts, with_straggler=True),
                                backend=backend, hedge=hedge,
                                hedge_budget=None) as svc:
                harness = ServingHarness(svc, deadline=10.0)
                stats = harness.run_closed_loop(load)
                name = "hedged" if hedged else "unhedged"
                print(f"{name:<12}{stats.throughput():>8.1f}"
                      f"{1e3 * stats.p50():>9.1f}{1e3 * stats.p95():>9.1f}"
                      f"{1e3 * stats.p99():>9.1f}"
                      f"{svc.hedges_issued:>8}{svc.hedge_wins:>6}")
    print("\nhedged routing re-issues straggling shard calls on the "
          "sibling replica\n(first answer wins, queued copy cancelled) — "
          "the live counterpart of the\nsimulator's tied-request "
          "semantics (repro.cluster.hedged).")

    # --- online shard rebalancing: move records between live shards ----
    from repro.core.clock import SimulatedClock as _Clock
    from repro.serving import SequentialBackend
    from repro.workloads import make_shard_map, shard_ratings

    print("\n--- online shard rebalancing (epoch-versioned state plane) ---")
    component_map = make_shard_map(matrix.n_users, 4)
    routed = ShardedService(
        [AccuracyTraderService(CFAdapter(), [p], config=CONFIG, i_max=4)
         for p in shard_ratings(matrix, component_map)],
        component_map=component_map)
    sim = lambda n: [_Clock(speed=1e12) for _ in range(n)]  # noqa: E731
    with routed:
        resp = routed.serve(as_envelope(request, 10.0), clocks=sim(4))
        before, reports = resp.answer, resp.reports
        print("pre-move epochs per component:",
              [r.state_epoch for r in reports])
        # A request dispatched *before* the move...
        pinned = [t for s in range(4)
                  for t in routed.shards[s].replicas[0].build_tasks(
                      request, 10.0, sim(1))]
        # ... then records 0 and 5 move to new components, live: only
        # the affected components rebuild, each as a new state epoch.
        report = routed.rebalance({0: 1, 5: 2})
        print(f"moved {report.n_moved} records; affected components "
              f"{report.affected_components} republished as epochs "
              f"{sorted(e for eps in report.epochs.values() for e in eps)}")
        # The in-flight request drains against its dispatch-time
        # snapshots: bit-identical to the pre-move answer.
        outcomes = SequentialBackend().run_tasks(pinned)
        drained = routed.merge([o.result for o in outcomes], request)
        assert drained.numer == before.numer
        assert drained.denom == before.denom
        print("in-flight request drained across the move: answer "
              "bit-identical (epoch pinning)")
        # And updates now route to the record's new home.
        shard, component, local_id = routed.locate_record(0)
        print(f"record 0 now lives on shard {shard} "
              f"(local id {local_id}); updates route there")


if __name__ == "__main__":
    main()
