"""Quickstart: build a synopsis, answer a request under a real deadline.

Builds the offline synopsis for one recommender partition of synthetic
MovieLens-like data, then runs Algorithm 1 under a *wall-clock* deadline
and compares the approximate predictions against exact full-scan ones.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AccuracyAwareProcessor,
    CFAdapter,
    CFRequest,
    SynopsisBuilder,
    SynopsisConfig,
)
from repro.util import make_rng
from repro.workloads import MovieLensConfig, generate_ratings


def main() -> None:
    # --- offline: create the partition's synopsis ----------------------
    data = generate_ratings(MovieLensConfig(
        n_users=1200, n_items=300, density=0.15, seed=7))
    adapter = CFAdapter()
    builder = SynopsisBuilder(adapter, SynopsisConfig(
        n_dims=3, n_iters=60, target_ratio=25.0, seed=7))
    synopsis, _ = builder.build(data.matrix)
    print(f"partition: {synopsis.n_original} users  ->  synopsis: "
          f"{synopsis.n_aggregated} aggregated users "
          f"(ratio {synopsis.aggregation_ratio:.1f}, "
          f"built in {synopsis.meta['total_s']:.2f}s)")

    # --- a request: an active user wanting rating predictions ----------
    rng = make_rng(7, "quickstart")
    ids, vals = data.matrix.user_ratings(0)
    keep = np.sort(rng.choice(ids.size, size=int(0.8 * ids.size), replace=False))
    targets = [int(i) for i in rng.choice(300, size=5, replace=False)]
    request = CFRequest(active_items=ids[keep], active_vals=vals[keep],
                        target_items=targets)

    # --- online: Algorithm 1 under a 50 ms wall-clock deadline ---------
    processor = AccuracyAwareProcessor(adapter, data.matrix, synopsis)
    result, report = processor.process(request, deadline=0.05)
    exact = adapter.exact(data.matrix, request)

    print(f"\nprocessed {report.groups_processed}/{synopsis.n_aggregated} "
          f"ranked groups in {1000 * report.total_elapsed:.1f} ms "
          f"(deadline 50 ms; "
          f"{'deadline hit' if report.hit_deadline else 'all data seen'})")
    print(f"\n{'item':>6}  {'approx':>7}  {'exact':>7}")
    for item in targets:
        print(f"{item:>6}  {result.predict(item):>7.3f}  "
              f"{exact.predict(item):>7.3f}")


if __name__ == "__main__":
    main()
