"""Parallel serving: one service, three execution backends, live updates.

Builds a 4-component recommender service whose adapter pays a real
storage stall per synopsis/group fetch (the cost the simulator models as
work units), then:

1. serves the same latency-bound request stream through the sequential,
   thread-pool, and process-pool backends and prints the throughput and
   latency each achieves;
2. serves an open-loop Poisson stream while synopsis updates land
   concurrently, demonstrating that copy-on-swap snapshots keep every
   in-flight answer consistent.

Run:  PYTHONPATH=src python examples/parallel_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AccuracyTraderService, CFAdapter, CFRequest, SynopsisConfig
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    ProcessPoolBackend,
    SequentialBackend,
    ServingHarness,
    ThreadPoolBackend,
)
from repro.workloads import MovieLensConfig, generate_ratings, split_ratings

N_COMPONENTS = 4
STALL_S = 2e-3


def build_service() -> AccuracyTraderService:
    data = generate_ratings(MovieLensConfig(
        n_users=600, n_items=80, density=0.2, n_clusters=6, seed=23))
    parts = split_ratings(data.matrix, N_COMPONENTS)
    adapter = IOStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                             group_stall=STALL_S)
    return AccuracyTraderService(adapter, parts, config=SynopsisConfig(
        n_iters=30, target_ratio=15.0, seed=23))


def make_loadgen(service: AccuracyTraderService) -> LoadGenerator:
    matrix = service.partitions[0]

    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [int(t) for t in rng.choice(matrix.n_items, size=4,
                                              replace=False)]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=23)


def main() -> None:
    service = build_service()
    loadgen = make_loadgen(service)
    print(f"{N_COMPONENTS}-component CF service, "
          f"{1e3 * STALL_S:.0f} ms storage stall per fetch")

    # --- backend comparison, latency-bound (one closed-loop client) ----
    load = loadgen.closed_loop(n_clients=1, n_requests=16)
    backends = [SequentialBackend(), ThreadPoolBackend(N_COMPONENTS),
                ProcessPoolBackend(2)]
    print(f"\n{'backend':<12}{'req/s':>8}{'p50 ms':>9}{'p95 ms':>9}")
    baseline = None
    for backend in backends:
        with backend:
            harness = ServingHarness(service, deadline=10.0, backend=backend)
            stats = harness.run_closed_loop(load)
        if baseline is None:
            baseline = stats.throughput()
        print(f"{backend.name:<12}{stats.throughput():>8.1f}"
              f"{1e3 * stats.p50():>9.1f}{1e3 * stats.p95():>9.1f}"
              f"   ({stats.throughput() / baseline:.2f}x)")

    # --- open loop with concurrent synopsis updates --------------------
    def add_users(svc: AccuracyTraderService):
        part = svc.partitions[0]
        new = part.with_rows_appended(
            np.zeros(4, dtype=np.int64), np.arange(4), np.full(4, 4.0))
        return svc.add_points(0, new, [part.n_users])

    stream = loadgen.poisson(rate=40.0, duration=1.0)
    with ThreadPoolBackend(N_COMPONENTS) as backend:
        harness = ServingHarness(service, deadline=10.0, backend=backend,
                                 max_concurrency=16)
        stats = harness.run_open_loop(
            stream, updates=[(0.3, add_users), (0.6, add_users)])
    print(f"\nopen loop: {stats.n_requests} requests at 40 req/s with "
          f"{len(stats.update_log)} concurrent add-point updates")
    print(f"  throughput {stats.throughput():.1f} req/s, "
          f"p50 {1e3 * stats.p50():.1f} ms, p95 {1e3 * stats.p95():.1f} ms, "
          f"p99 {1e3 * stats.p99():.1f} ms")
    for at, report in stats.update_log:
        print(f"  update at t={at:.1f}s: +{report.n_points} points, "
              f"{report.n_groups_before} -> {report.n_groups_after} groups, "
              f"{report.n_groups_reaggregated} re-aggregated "
              f"in {1e3 * report.seconds:.0f} ms")
    print("\nall in-flight answers were computed against consistent "
          "(partition, synopsis) snapshots — see repro.serving docs.")


if __name__ == "__main__":
    main()
