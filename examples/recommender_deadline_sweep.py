"""Recommender scenario: accuracy vs deadline across a partitioned service.

Deploys the CF service over several partitions (as the paper fans a
request across components), then sweeps the per-component deadline and
reports the accuracy loss of the merged approximate predictions relative
to exact processing — the trade AccuracyTrader exposes.  Time is
simulated (one work unit = one user scanned), so results are exact and
machine-independent.

Run:  python examples/recommender_deadline_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AccuracyAwareProcessor,
    CFAdapter,
    CFRequest,
    SimulatedClock,
    SynopsisBuilder,
    SynopsisConfig,
)
from repro.recommender import RatingMatrix, merge_predictions, rmse
from repro.recommender.metrics import accuracy_loss_percent
from repro.util import make_rng
from repro.workloads import MovieLensConfig, generate_ratings

N_PARTITIONS = 4
SCAN_TIME_S = 0.016  # idle full-partition scan, anchors simulated speed


def main() -> None:
    data = generate_ratings(MovieLensConfig(
        n_users=1600, n_items=250, density=0.15, seed=3))
    users, items, vals = data.matrix.to_triples()

    adapter = CFAdapter()
    builder = SynopsisBuilder(adapter, SynopsisConfig(
        n_iters=60, target_ratio=25.0, seed=3))
    partitions, synopses = [], []
    for p in range(N_PARTITIONS):
        mask = (users % N_PARTITIONS) == p
        part = RatingMatrix(users[mask] // N_PARTITIONS, items[mask],
                            vals[mask], n_users=1600 // N_PARTITIONS,
                            n_items=250)
        synopsis, _ = builder.build(part)
        partitions.append(part)
        synopses.append(synopsis)
    print(f"{N_PARTITIONS} partitions x {partitions[0].n_users} users, "
          f"{synopses[0].n_aggregated} aggregated users each")

    # Requests: jittered copies of stored users, targets held out.
    rng = make_rng(3, "sweep")
    requests, actuals = [], []
    for _ in range(30):
        proto = int(rng.integers(0, 1600))
        f = data.user_factors[proto] + rng.normal(0, 0.2, data.user_factors.shape[1])
        chosen = rng.choice(250, size=60, replace=False)
        reveal, targets = chosen[:50], chosen[50:]
        raw = data.item_factors[reveal] @ f
        revealed = np.clip(1 + 4 / (1 + np.exp(-raw)), 1, 5)
        actual = 1 + 4 / (1 + np.exp(-(data.item_factors[targets] @ f)))
        requests.append(CFRequest(reveal, revealed, [int(t) for t in targets]))
        actuals.append(actual)

    exact_preds = [
        merge_predictions([adapter.exact(p, req) for p in partitions],
                          active_mean=req.active_mean)
        for req in requests
    ]
    exact_rmse = rmse(
        np.concatenate([e.predict_many(r.target_items)
                        for e, r in zip(exact_preds, requests)]),
        np.concatenate(actuals))
    print(f"exact RMSE: {exact_rmse:.4f}\n")
    print(f"{'deadline (ms)':>13}  {'groups seen':>11}  {'accuracy loss':>13}")

    speed = partitions[0].n_users / SCAN_TIME_S
    for deadline_ms in (0.2, 1.0, 2.0, 5.0, 10.0, 20.0):
        preds, seen = [], []
        for req in requests:
            parts = []
            for part, syn in zip(partitions, synopses):
                proc = AccuracyAwareProcessor(adapter, part, syn)
                result, rep = proc.process(req, deadline_ms / 1000.0,
                                           clock=SimulatedClock(speed=speed))
                parts.append(result)
                seen.append(rep.groups_processed / syn.n_aggregated)
            preds.append(merge_predictions(parts, active_mean=req.active_mean))
        approx_rmse = rmse(
            np.concatenate([a.predict_many(r.target_items)
                            for a, r in zip(preds, requests)]),
            np.concatenate(actuals))
        loss = accuracy_loss_percent(approx_rmse, exact_rmse)
        print(f"{deadline_ms:>13.1f}  {100 * np.mean(seen):>10.0f}%  "
              f"{loss:>12.2f}%")


if __name__ == "__main__":
    main()
