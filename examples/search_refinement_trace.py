"""Search scenario: watch Algorithm 1 refine a query's top-10.

Builds a topic-structured corpus partition and its synopsis, then replays
one query at increasing refinement depths, printing how the retrieved
top-10 converges to the exact answer — the Figure 4(b) mechanism made
visible.

Run:  python examples/search_refinement_trace.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SearchAdapter, SearchQuery, SynopsisBuilder, SynopsisConfig
from repro.core.processor import refine_to_depth
from repro.search import topk_overlap
from repro.workloads import CorpusConfig, generate_corpus


def main() -> None:
    corpus = generate_corpus(CorpusConfig(
        n_docs=1200, n_topics=15, vocab_size=5000, seed=5))
    adapter = SearchAdapter()
    synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
        n_iters=50, target_ratio=15.0, seed=5)).build(corpus.partition)
    print(f"corpus: {corpus.partition.n_docs} pages, "
          f"synopsis: {synopsis.n_aggregated} aggregated pages")

    query = SearchQuery(terms=corpus.topic_words(2, n=3), k=10)
    print(f"query terms: {query.terms}")

    exact = adapter.exact(corpus.partition, query)
    exact_ids = [h.doc_id for h in exact]
    print(f"actual top-10 (full scan): {exact_ids}\n")

    # Where do the actual top-10 live in the correlation ranking?
    _, corr = adapter.initial_result(synopsis, query)
    order = list(np.argsort(-corr, kind="stable"))
    ranks = sorted(order.index(synopsis.index.group_of(d)) for d in exact_ids)
    print(f"rank positions of their groups (of {synopsis.n_aggregated}): {ranks}\n")

    print(f"{'depth':>5}  {'% groups':>8}  {'overlap':>7}   retrieved top-10")
    m = synopsis.n_aggregated
    for depth in (0, max(1, m // 10), max(1, m // 5), int(0.4 * m), m):
        hits = refine_to_depth(adapter, corpus.partition, synopsis, query,
                               depth)
        ids = [h.doc_id for h in hits]
        ov = topk_overlap(ids, exact_ids)
        print(f"{depth:>5}  {100 * depth / m:>7.0f}%  {ov:>7.2f}   {ids}")

    print("\nThe paper's 40% rule: refining the top 40% ranked groups "
          "recovers (nearly) the whole actual top-10.")


if __name__ == "__main__":
    main()
